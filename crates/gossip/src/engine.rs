//! Event-driven engine running the generic (NAT-oblivious) protocol.
//!
//! This is the baseline of Section 3 of the paper: peers address view
//! entries directly, with no traversal machinery. Under NATs, requests to
//! unreachable entries silently vanish — which is exactly the degradation
//! Figures 2–4 quantify.

use nylon_faults::{FaultPlan, FaultRuntime, FaultStats};
use nylon_net::{
    BufferPool, Delivery, DenseMap, Endpoint, InFlight, NatClass, NetConfig, Network, Outbound,
    PeerId, Slab, SlabKey,
};
use nylon_sim::{ShardPlan, ShardWorker, Sim, SimDuration, SimRng, SimTime};

use crate::descriptor::NodeDescriptor;
use crate::policy::{GossipConfig, PropagationPolicy};
use crate::view::PartialView;

/// Wire messages of the generic protocol (Figure 1 of the paper).
#[derive(Debug, Clone)]
pub enum BaselineMsg {
    /// Shuffle request carrying the initiator's view (plus fresh self
    /// descriptor).
    Request {
        /// Initiating peer.
        from: PeerId,
        /// Shipped descriptors.
        entries: Vec<NodeDescriptor>,
    },
    /// Shuffle response carrying the target's view (push/pull only).
    Response {
        /// Responding peer.
        from: PeerId,
        /// Shipped descriptors.
        entries: Vec<NodeDescriptor>,
    },
}

/// Engine events.
///
/// `Deliver` carries only a slab handle: the actual [`InFlight`] datagram
/// (~100 B of endpoints, accounting and payload) parks in the engine's
/// flight slab while the event moves through the timer wheel, so every
/// push/pop/cascade copies one machine word instead of a cache line.
#[derive(Debug)]
enum Ev {
    /// A peer's shuffle timer fired.
    Shuffle(PeerId),
    /// A datagram arrives; the handle resolves in the flight slab.
    Deliver(SlabKey),
    /// Periodic NAT state garbage collection.
    Purge,
    /// The next fault-plan event is due (see [`nylon_faults`]).
    Fault,
}

// The whole point of the slab indirection: wheeled events stay slim.
const _: () = assert!(std::mem::size_of::<Ev>() <= 32, "Ev must stay slim for the timer wheel");

/// Shard-mode state of an engine acting as one worker of a sharded run.
///
/// In shard mode the engine still holds the *full* population (the address
/// plan, liveness, and per-node RNG labels are pure functions of the add
/// order, so replicating them costs no determinism), but only materializes
/// protocol state — view contents, timers, NAT sessions — for the nodes
/// the plan assigns to `idx`. Every datagram, including ones between two
/// co-located nodes, is staged into `staged[dst_shard]` instead of being
/// scheduled directly, so delivery order is fixed by the canonical merge
/// in `absorb`, never by which nodes happen to share a shard.
#[derive(Debug)]
pub struct ShardCtx<P> {
    /// The node→shard assignment shared by all workers of the run.
    pub plan: ShardPlan,
    /// This worker's shard index.
    pub idx: usize,
    /// Outgoing flights staged per destination shard, drained by
    /// [`ShardWorker::run_tick`] at the end of each tick.
    pub staged: Vec<Vec<InFlight<P>>>,
}

impl<P> ShardCtx<P> {
    /// A context for shard `idx` of `plan`, with empty staging buffers.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a valid shard of `plan`.
    pub fn new(plan: ShardPlan, idx: usize) -> Self {
        assert!(idx < plan.shards(), "shard index out of range");
        ShardCtx { plan, idx, staged: (0..plan.shards()).map(|_| Vec::new()).collect() }
    }

    /// Whether this shard owns `peer`.
    pub fn owns(&self, peer: PeerId) -> bool {
        self.plan.shard_of(peer.0) == self.idx
    }

    /// Stages a flight for the shard owning its addressee, or for this
    /// shard when the destination is unroutable (the local `deliver` then
    /// counts the drop — on a fixed shard, so counters stay deterministic).
    pub fn stage<P2>(&mut self, net: &Network<P2>, flight: InFlight<P>) {
        let dst = match net.addressee_of(flight.dst_ep) {
            Some(q) => self.plan.shard_of(q.0),
            None => self.idx,
        };
        self.staged[dst].push(flight);
    }

    /// Moves this tick's staged flights into the driver's outboxes.
    pub fn drain_into(&mut self, out: &mut [Vec<InFlight<P>>]) {
        for (dst, staged) in self.staged.iter_mut().enumerate() {
            out[dst].append(staged);
        }
    }
}

/// Sorts a merged tick batch into the canonical delivery order: arrival
/// instant, then sending node (per-sender order is positional — a sender's
/// flights arrive already in its send order, and a stable sort keeps them
/// there). The key is a pure function of the logical message stream, which
/// is what makes sharded output independent of the shard count.
pub fn sort_tick_batch<P>(batch: &mut [InFlight<P>]) {
    batch.sort_by_key(|f| (f.arrive_at, f.sender.0));
}

/// Aggregate protocol counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// Shuffle rounds in which a target was selected and a request sent.
    pub initiated: u64,
    /// Rounds skipped because the view was empty.
    pub empty_view_rounds: u64,
    /// Requests that reached their target.
    pub requests_received: u64,
    /// Responses that reached the initiator.
    pub responses_received: u64,
}

impl ShuffleStats {
    /// Adds another counter set into this one. In a sharded run every
    /// protocol event is counted on exactly one shard (the one owning the
    /// acting node), so summing the per-shard counters reproduces the
    /// single-engine totals.
    pub fn merge(&mut self, other: &ShuffleStats) {
        self.initiated += other.initiated;
        self.empty_view_rounds += other.empty_view_rounds;
        self.requests_received += other.requests_received;
        self.responses_received += other.responses_received;
    }
}

#[derive(Debug)]
struct Node {
    view: PartialView,
    rng: SimRng,
    /// Ids shipped per outstanding request, for the swapper merge.
    pending_sent: DenseMap<PeerId, Vec<PeerId>>,
}

/// Interval between NAT garbage-collection sweeps.
const PURGE_EVERY: SimDuration = SimDuration::from_secs(60);

/// The baseline peer-sampling engine.
///
/// Usage: construct, [`add_peer`](Self::add_peer) the population,
/// [`bootstrap_random_public`](Self::bootstrap_random_public),
/// [`start`](Self::start), then [`run_rounds`](Self::run_rounds) /
/// [`run_for`](Self::run_for). See the crate-level example.
#[derive(Debug)]
pub struct BaselineEngine {
    sim: Sim<Ev>,
    net: Network<BaselineMsg>,
    cfg: GossipConfig,
    nodes: Vec<Node>,
    stats: ShuffleStats,
    started: bool,
    sample_log: Option<Vec<u32>>,
    wire_tap: Option<Vec<Outbound<BaselineMsg>>>,
    /// Recycled descriptor buffers for shuffle payloads: in steady state
    /// no exchange allocates (see `nylon_net::pool`).
    payload_pool: BufferPool<NodeDescriptor>,
    /// Recycled id buffers for the shipped-id lists of the swapper merge.
    id_pool: BufferPool<PeerId>,
    /// In-flight datagrams, parked here while their 4-byte handle travels
    /// through the timer wheel (see [`Ev`]); slots recycle, so the slab's
    /// footprint is the high-water mark of concurrent flights.
    flights: Slab<InFlight<BaselineMsg>>,
    /// `Some` when this engine is one worker of a sharded run.
    shard: Option<ShardCtx<BaselineMsg>>,
    /// `Some` when a fault plan is installed (see
    /// [`install_fault_plan`](Self::install_fault_plan)).
    faults: Option<FaultRuntime>,
}

impl BaselineEngine {
    /// Creates an engine with the given protocol and fabric configuration;
    /// `seed` drives every random choice in the run.
    pub fn new(cfg: GossipConfig, net_cfg: NetConfig, seed: u64) -> Self {
        let sim = Sim::new(seed);
        let net = Network::new(net_cfg, seed ^ 0x4E59_4C4F_4E00_0001);
        BaselineEngine {
            sim,
            net,
            cfg,
            nodes: Vec::new(),
            stats: ShuffleStats::default(),
            started: false,
            sample_log: None,
            wire_tap: None,
            payload_pool: BufferPool::new(),
            id_pool: BufferPool::new(),
            flights: Slab::new(),
            shard: None,
            faults: None,
        }
    }

    /// Installs a compiled fault plan: applies its topology faults now and
    /// schedules its timed events. Call after the population is added and
    /// before bootstrap, so descriptors advertise post-CGN identities.
    ///
    /// # Panics
    ///
    /// Panics if the engine has already started or a plan is installed.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        assert!(!self.started, "install the fault plan before start()");
        assert!(self.faults.is_none(), "fault plan already installed");
        plan.apply_topology(&mut self.net);
        let count_global = self.shard.as_ref().is_none_or(|s| s.idx == 0);
        let rt = FaultRuntime::new(plan, count_global);
        if let Some(at) = rt.next_at() {
            self.sim.schedule_at(at, Ev::Fault);
        }
        self.faults = Some(rt);
    }

    /// Counters of faults applied so far (ownership-filtered in shard
    /// mode; see [`FaultStats`]).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats()).unwrap_or_default()
    }

    /// Turns this engine into worker `idx` of a sharded run (see
    /// [`crate::sharded`]). Must be called on a fresh engine, before any
    /// peer is added: the shard plan gates which nodes get timers and
    /// protocol state from the very first add.
    ///
    /// # Panics
    ///
    /// Panics if the engine has already been populated or started.
    pub fn set_shard(&mut self, plan: ShardPlan, idx: usize) {
        assert!(!self.started && self.nodes.is_empty(), "set_shard requires a fresh engine");
        self.shard = Some(ShardCtx::new(plan, idx));
    }

    /// Whether this engine materializes protocol state for `peer` — always
    /// true outside shard mode.
    fn owns(&self, peer: PeerId) -> bool {
        self.shard.as_ref().is_none_or(|s| s.owns(peer))
    }

    /// Total events processed by the local event loop.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Switches the engine to wire-tap mode: datagrams are no longer routed
    /// through the simulated fabric but collected for an external transport
    /// (see [`BaselineEngine::take_outbound`]), and inbound datagrams enter
    /// via [`BaselineEngine::deliver_wire`]. Protocol behaviour is
    /// untouched — only the carriage substrate changes.
    ///
    /// Note: in this mode the fabric's NAT state sees no traffic, so the
    /// packet-level `reachable` oracle (and therefore this engine's
    /// `edge_usable`) reflects the wire's NAT emulation, not the internal
    /// one.
    pub fn enable_wire_tap(&mut self) {
        self.wire_tap = Some(Vec::new());
    }

    /// Drains the datagrams queued since the last call (wire-tap mode).
    pub fn take_outbound(&mut self) -> Vec<Outbound<BaselineMsg>> {
        self.wire_tap.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Injects a datagram received from an external transport, addressed to
    /// `to` and observed as coming from `from_ep` (post-NAT). The protocol
    /// handling is identical to a simulated delivery.
    pub fn deliver_wire(&mut self, to: PeerId, from_ep: Endpoint, msg: BaselineMsg) {
        if !self.net.is_alive(to) {
            return;
        }
        self.net.note_received(to, self.payload_bytes(&msg));
        self.on_msg(to, from_ep, msg);
    }

    /// Modeled payload size of a message, per the config's wire-size model.
    fn payload_bytes(&self, msg: &BaselineMsg) -> u32 {
        match msg {
            BaselineMsg::Request { entries, .. } | BaselineMsg::Response { entries, .. } => {
                self.cfg.message_bytes(entries.len())
            }
        }
    }

    /// Sends `msg` to `to_ep`: through the fabric normally, or onto the
    /// wire-tap queue when an external transport carries the datagrams.
    fn send_msg(&mut self, from: PeerId, to_ep: Endpoint, msg: BaselineMsg) {
        let bytes = self.payload_bytes(&msg);
        if let Some(tap) = &mut self.wire_tap {
            tap.push(Outbound { from, dst: to_ep, payload_bytes: bytes, payload: msg });
            self.net.note_sent(from, bytes);
            return;
        }
        let now = self.sim.now();
        if let Some(flight) = self.net.send(now, from, to_ep, msg, bytes) {
            if let Some(ctx) = &mut self.shard {
                ctx.stage(&self.net, flight);
            } else {
                let at = flight.arrive_at;
                self.sim.schedule_at(at, Ev::Deliver(self.flights.insert(flight)));
            }
        }
    }

    /// Starts recording every gossip-target selection (peer ids, in
    /// selection order) for randomness analysis. Call before running.
    pub fn enable_sample_log(&mut self) {
        self.sample_log = Some(Vec::new());
    }

    /// The recorded target selections, if logging was enabled.
    pub fn sample_log(&self) -> Option<&[u32]> {
        self.sample_log.as_deref()
    }

    /// The protocol configuration.
    pub fn config(&self) -> &GossipConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The underlying network (for oracles and traffic stats).
    pub fn net(&self) -> &Network<BaselineMsg> {
        &self.net
    }

    /// Protocol counters.
    pub fn stats(&self) -> ShuffleStats {
        self.stats
    }

    /// Reports kernel, net, and engine-layer telemetry into `out`.
    /// Read-only: see [`PeerSampler::obs_report`]'s contract.
    ///
    /// [`PeerSampler::obs_report`]: crate::PeerSampler::obs_report
    pub fn obs_report(&self, out: &mut nylon_obs::Report) {
        self.sim.obs_report(out);
        self.net.obs_report(out);
        self.payload_pool.obs_report(out);
        self.id_pool.obs_report(out);
        out.counter("engine.baseline", "shuffles_initiated", self.stats.initiated);
        out.counter("engine.baseline", "empty_view_rounds", self.stats.empty_view_rounds);
        out.counter("engine.baseline", "requests_received", self.stats.requests_received);
        out.counter("engine.baseline", "responses_received", self.stats.responses_received);
        if let Some(f) = &self.faults {
            f.obs_report(out);
        }
    }

    /// Adds a peer of the given NAT class and returns its id.
    ///
    /// If the engine is already running, the peer starts shuffling one
    /// random phase into the next period (a joining node).
    pub fn add_peer(&mut self, class: NatClass) -> PeerId {
        let id = self.net.add_peer(class);
        let rng = self.sim.rng().fork(0x6E6F_6465_0000_0000 | id.0 as u64);
        self.nodes.push(Node {
            view: PartialView::new(id, self.cfg.view_size),
            rng,
            pending_sent: DenseMap::new(),
        });
        if self.started && self.owns(id) {
            let phase = {
                let period = self.cfg.shuffle_period.as_millis();
                let node = &mut self.nodes[id.index()];
                SimDuration::from_millis(node.rng.gen_range(0..period))
            };
            self.sim.schedule_after(phase, Ev::Shuffle(id));
        }
        id
    }

    /// Enables a permanent UPnP/NAT-PMP port forwarding for a natted peer
    /// (no-op for public peers). Call before bootstrapping so descriptors
    /// advertise the forwarded endpoint.
    pub fn enable_port_forwarding(&mut self, peer: PeerId) {
        let _ = self.net.enable_port_forwarding(peer);
    }

    /// Adds a peer whose initial view contains descriptors of `contacts`
    /// (the join path: a new node knows a few existing members).
    pub fn add_peer_with_bootstrap(&mut self, class: NatClass, contacts: &[PeerId]) -> PeerId {
        let id = self.add_peer(class);
        for c in contacts {
            if *c == id || !self.net.is_alive(*c) {
                continue;
            }
            let d = NodeDescriptor::new(*c, self.net.identity_endpoint(*c), self.net.class_of(*c));
            self.nodes[id.index()].view.insert(d);
        }
        id
    }

    /// Fills every view with up to `per_view` uniformly chosen *public*
    /// peers (the paper's bootstrap: "all peers' views are filled with
    /// randomly chosen public peers", guaranteeing an initially connected
    /// graph).
    ///
    /// If the population has no public peers at all, falls back to
    /// uniformly chosen arbitrary peers (their NATs make many of these
    /// entries immediately unusable for the baseline — that is the point of
    /// the 100 % NAT data point).
    pub fn bootstrap_random_public(&mut self, per_view: usize) {
        let publics: Vec<PeerId> =
            self.net.alive_peers().filter(|p| self.net.class_of(*p).is_public()).collect();
        let everyone: Vec<PeerId> = self.net.alive_peers().collect();
        let pool = if publics.is_empty() { everyone } else { publics };
        let all: Vec<PeerId> = self.net.alive_peers().collect();
        for p in all {
            // Shard mode: other shards fill this node's view (from the
            // same per-node stream); no box state is touched here, so the
            // whole iteration can be skipped.
            if !self.owns(p) {
                continue;
            }
            let candidates: Vec<PeerId> = pool.iter().copied().filter(|q| *q != p).collect();
            let chosen = {
                let node = &mut self.nodes[p.index()];
                node.rng.sample_without_replacement(&candidates, per_view)
            };
            for q in chosen {
                let d = NodeDescriptor::new(q, self.net.identity_endpoint(q), self.net.class_of(q));
                self.nodes[p.index()].view.insert(d);
            }
        }
    }

    /// Scalable variant of [`bootstrap_random_public`]: each peer draws its
    /// `per_view` public contacts by rejection sampling against its view
    /// instead of materialising (and shuffling) a full candidate list.
    ///
    /// The exhaustive variant is O(n) RNG work *per peer* — fine at paper
    /// scale, prohibitive at the 100k-node measurement scale. This one is
    /// O(per_view) expected per peer. Both fill views with uniformly chosen
    /// public peers (arbitrary peers when no public peer exists), but their
    /// RNG draw patterns differ, so the figure pipeline keeps the original
    /// and replay output is untouched.
    pub fn bootstrap_random_public_sparse(&mut self, per_view: usize) {
        let publics: Vec<PeerId> =
            self.net.alive_peers().filter(|p| self.net.class_of(*p).is_public()).collect();
        let fallback = publics.is_empty();
        let pool: Vec<PeerId> = if fallback { self.net.alive_peers().collect() } else { publics };
        let all: Vec<PeerId> = self.net.alive_peers().collect();
        for p in all {
            if !self.owns(p) {
                continue; // see bootstrap_random_public
            }
            // The pool minus self can be smaller than per_view. Membership
            // of `p` follows from its class (or is certain in fallback
            // mode) — a `pool.contains` scan here would reintroduce the
            // O(n²) this function exists to avoid.
            let in_pool = fallback || self.net.class_of(p).is_public();
            let want = per_view.min(pool.len().saturating_sub(usize::from(in_pool)));
            let mut picked = Vec::with_capacity(want);
            let mut attempts = 0usize;
            let budget = 20 * per_view + 64;
            while picked.len() < want && attempts < budget {
                attempts += 1;
                let q = {
                    let node = &mut self.nodes[p.index()];
                    *node.rng.pick(&pool).expect("bootstrap pool non-empty")
                };
                if q == p || picked.contains(&q) {
                    continue;
                }
                picked.push(q);
            }
            for q in picked {
                let d = NodeDescriptor::new(q, self.net.identity_endpoint(q), self.net.class_of(q));
                self.nodes[p.index()].view.insert(d);
            }
        }
    }

    /// Schedules the first shuffle of every peer (random phase within one
    /// period) and the periodic NAT garbage collection.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self) {
        assert!(!self.started, "engine already started");
        self.started = true;
        let period = self.cfg.shuffle_period.as_millis();
        let peers: Vec<PeerId> = self.net.alive_peers().collect();
        for p in peers {
            // In shard mode only owned nodes get timers; skipping the
            // phase draw too is safe because each node draws from its own
            // forked stream.
            if !self.owns(p) {
                continue;
            }
            let phase = {
                let node = &mut self.nodes[p.index()];
                SimDuration::from_millis(node.rng.gen_range(0..period))
            };
            self.sim.schedule_after(phase, Ev::Shuffle(p));
        }
        self.sim.schedule_after(PURGE_EVERY, Ev::Purge);
    }

    /// Runs the simulation for `dur` of virtual time.
    pub fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.sim.now() + dur;
        while let Some((_, ev)) = self.sim.step_before(deadline) {
            self.handle(ev);
        }
        self.sim.advance_to(deadline);
    }

    /// Runs for `n` shuffle periods.
    pub fn run_rounds(&mut self, n: u64) {
        self.run_for(self.cfg.shuffle_period * n);
    }

    /// Kills a set of peers simultaneously (fail-stop churn).
    pub fn kill_peers(&mut self, peers: &[PeerId]) {
        for p in peers {
            self.net.kill_peer(*p);
        }
    }

    /// The view of a peer (dead peers keep their last view).
    pub fn view_of(&self, peer: PeerId) -> &PartialView {
        &self.nodes[peer.index()].view
    }

    /// Mutable view access (the adversary seam; see
    /// [`crate::PeerSampler::view_of_mut`]).
    pub fn view_of_mut(&mut self, peer: PeerId) -> &mut PartialView {
        &mut self.nodes[peer.index()].view
    }

    /// A peer's fresh (age-0) self-descriptor, as it would advertise
    /// itself in a shuffle.
    pub fn descriptor_of(&self, peer: PeerId) -> NodeDescriptor {
        self.self_descriptor(peer)
    }

    /// Iterator over alive peers.
    pub fn alive_peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.net.alive_peers()
    }

    /// A peer's fresh self-descriptor.
    fn self_descriptor(&self, peer: PeerId) -> NodeDescriptor {
        NodeDescriptor::new(peer, self.net.identity_endpoint(peer), self.net.class_of(peer))
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Shuffle(p) => self.on_shuffle(p),
            Ev::Deliver(key) => {
                let flight = self.flights.remove(key);
                self.on_deliver(flight);
            }
            Ev::Purge => {
                let now = self.sim.now();
                self.net.purge_expired_nat_state(now);
                self.sim.schedule_after(PURGE_EVERY, Ev::Purge);
            }
            Ev::Fault => self.on_fault(),
        }
    }

    /// Applies due fault-plan events and re-arms for the next instant.
    ///
    /// Revived peers need no timer surgery: with a fault plan installed,
    /// dead peers' shuffle chains keep ticking idle (see
    /// [`on_shuffle`](Self::on_shuffle)), so a revived peer resumes at its
    /// original phase on every shard identically.
    fn on_fault(&mut self) {
        let now = self.sim.now();
        let Some(rt) = self.faults.as_mut() else { return };
        let shard = self.shard.as_ref();
        rt.apply_due(now, &mut self.net, |p| shard.is_none_or(|s| s.owns(p)), &mut Vec::new());
        if let Some(at) = rt.next_at() {
            self.sim.schedule_at(at, Ev::Fault);
        }
    }

    /// Figure 1, lines 1–7: select target, ship view, age entries.
    fn on_shuffle(&mut self, p: PeerId) {
        if !self.net.is_alive(p) {
            // Dead peers stop shuffling; the timer chain normally ends
            // here. Under a fault plan the chain keeps ticking idle so a
            // later Revive fault resumes shuffling at the original phase
            // (no rescheduling, hence no cross-shard tie hazards).
            if self.faults.is_some() {
                self.sim.schedule_after(self.cfg.shuffle_period, Ev::Shuffle(p));
            }
            return;
        }
        let self_d = self.self_descriptor(p);
        let target = {
            let node = &mut self.nodes[p.index()];
            node.view.select_target(self.cfg.selection, &mut node.rng)
        };
        match target {
            None => self.stats.empty_view_rounds += 1,
            Some(target) => {
                if let Some(log) = &mut self.sample_log {
                    log.push(target.id.0);
                }
                let mut payload = self.payload_pool.acquire();
                self.nodes[p.index()].view.write_shuffle_payload(self_d, &mut payload);
                let mut sent_ids = self.id_pool.acquire();
                sent_ids.extend(payload.iter().map(|d| d.id));
                if let Some(old) = self.nodes[p.index()].pending_sent.insert(target.id, sent_ids) {
                    self.id_pool.release(old);
                }
                let msg = BaselineMsg::Request { from: p, entries: payload };
                self.send_msg(p, target.addr, msg);
                self.stats.initiated += 1;
            }
        }
        self.nodes[p.index()].view.increase_age();
        self.sim.schedule_after(self.cfg.shuffle_period, Ev::Shuffle(p));
    }

    fn on_deliver(&mut self, flight: InFlight<BaselineMsg>) {
        let now = self.sim.now();
        let (to, from_ep, msg) = match self.net.deliver(now, flight) {
            Delivery::ToPeer { to, from_ep, payload } => (to, from_ep, payload),
            Delivery::Dropped { payload, .. } => {
                // The drop is counted by the fabric; the payload buffer
                // still goes back to the pool.
                self.recycle_msg(payload);
                return;
            }
        };
        self.on_msg(to, from_ep, msg);
    }

    /// Returns a consumed message's entry buffer to the pool.
    fn recycle_msg(&mut self, msg: BaselineMsg) {
        match msg {
            BaselineMsg::Request { entries, .. } | BaselineMsg::Response { entries, .. } => {
                self.payload_pool.release(entries)
            }
        }
    }

    /// Protocol handling of a delivered message, independent of the
    /// carriage substrate (simulated fabric or live transport).
    fn on_msg(&mut self, to: PeerId, from_ep: Endpoint, msg: BaselineMsg) {
        match msg {
            // Figure 1, lines 8–12: answer (push/pull), then merge.
            BaselineMsg::Request { from, entries } => {
                self.stats.requests_received += 1;
                let self_d = self.self_descriptor(to);
                let mut sent_ids = self.id_pool.acquire();
                if self.cfg.propagation == PropagationPolicy::PushPull {
                    let mut payload = self.payload_pool.acquire();
                    self.nodes[to.index()].view.write_shuffle_payload(self_d, &mut payload);
                    sent_ids.extend(payload.iter().map(|d| d.id));
                    let msg = BaselineMsg::Response { from: to, entries: payload };
                    // Reply to the *observed* source endpoint: travels back
                    // through whatever hole the request opened.
                    self.send_msg(to, from_ep, msg);
                }
                let node = &mut self.nodes[to.index()];
                node.view.merge_and_truncate(&entries, &sent_ids, self.cfg.merge, &mut node.rng);
                self.id_pool.release(sent_ids);
                self.payload_pool.release(entries);
                let _ = from;
            }
            // Figure 1, lines 4–6: initiator merges the pulled view.
            BaselineMsg::Response { from, entries } => {
                self.stats.responses_received += 1;
                let node = &mut self.nodes[to.index()];
                let sent = node.pending_sent.remove(&from).unwrap_or_default();
                node.view.merge_and_truncate(&entries, &sent, self.cfg.merge, &mut node.rng);
                self.id_pool.release(sent);
                self.payload_pool.release(entries);
            }
        }
    }
}

impl ShardWorker for BaselineEngine {
    type Envelope = InFlight<BaselineMsg>;

    fn run_tick(&mut self, boundary: SimTime, out: &mut [Vec<InFlight<BaselineMsg>>]) {
        while let Some((_, ev)) = self.sim.step_before(boundary) {
            self.handle(ev);
        }
        self.sim.advance_to(boundary);
        self.shard.as_mut().expect("run_tick requires shard mode").drain_into(out);
    }

    fn absorb(&mut self, mut batch: Vec<InFlight<BaselineMsg>>) {
        sort_tick_batch(&mut batch);
        for f in batch {
            let at = f.arrive_at;
            self.sim.schedule_at(at, Ev::Deliver(self.flights.insert(f)));
        }
    }

    fn envelope_bytes(envelope: &InFlight<BaselineMsg>) -> u64 {
        envelope.wire_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MergePolicy, SelectionPolicy};
    use nylon_net::NatType;

    fn engine_with(publics: usize, natted: usize, nat: NatType, seed: u64) -> BaselineEngine {
        let mut eng = BaselineEngine::new(GossipConfig::default(), NetConfig::default(), seed);
        for _ in 0..publics {
            eng.add_peer(NatClass::Public);
        }
        for _ in 0..natted {
            eng.add_peer(NatClass::Natted(nat));
        }
        eng.bootstrap_random_public(8);
        eng.start();
        eng
    }

    #[test]
    fn all_public_views_fill_up() {
        let mut eng = engine_with(40, 0, NatType::PortRestrictedCone, 1);
        eng.run_rounds(30);
        for p in eng.alive_peers().collect::<Vec<_>>() {
            assert_eq!(eng.view_of(p).len(), eng.config().view_size, "view of {p} not full");
        }
        let s = eng.stats();
        assert!(s.initiated > 0);
        assert!(s.responses_received > 0, "push/pull must produce responses");
    }

    #[test]
    fn push_mode_has_no_responses() {
        let cfg = GossipConfig { propagation: PropagationPolicy::Push, ..GossipConfig::default() };
        let mut eng = BaselineEngine::new(cfg, NetConfig::default(), 3);
        for _ in 0..30 {
            eng.add_peer(NatClass::Public);
        }
        eng.bootstrap_random_public(8);
        eng.start();
        eng.run_rounds(20);
        assert_eq!(eng.stats().responses_received, 0);
        assert!(eng.stats().requests_received > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut eng = engine_with(20, 20, NatType::PortRestrictedCone, seed);
            eng.run_rounds(25);
            let mut ids: Vec<Vec<u32>> = Vec::new();
            for p in eng.alive_peers().collect::<Vec<_>>() {
                let mut v: Vec<u32> = eng.view_of(p).ids().iter().map(|q| q.0).collect();
                v.sort_unstable();
                ids.push(v);
            }
            ids
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn natted_peers_participate() {
        let mut eng = engine_with(20, 20, NatType::RestrictedCone, 7);
        eng.run_rounds(40);
        // Natted peers spread into views via shuffles.
        let natted_refs: usize = eng
            .alive_peers()
            .collect::<Vec<_>>()
            .iter()
            .map(|p| eng.view_of(*p).iter().filter(|d| d.class.is_natted()).count())
            .sum();
        assert!(natted_refs > 0, "natted peers never entered any view");
    }

    #[test]
    fn dead_peers_stop_shuffling() {
        let mut eng = engine_with(20, 0, NatType::PortRestrictedCone, 5);
        eng.run_rounds(5);
        let initiated_before = eng.stats().initiated;
        let all: Vec<PeerId> = eng.alive_peers().collect();
        eng.kill_peers(&all);
        eng.run_rounds(10);
        // At most the already-scheduled round per peer fires (and is skipped
        // since the peer is dead), so `initiated` may grow by zero only.
        assert_eq!(eng.stats().initiated, initiated_before);
        assert_eq!(eng.alive_peers().count(), 0);
    }

    #[test]
    fn join_after_start_gets_integrated() {
        let mut eng = engine_with(20, 0, NatType::PortRestrictedCone, 9);
        eng.run_rounds(10);
        let seed_peer = eng.alive_peers().next().unwrap();
        let newbie = eng.add_peer_with_bootstrap(NatClass::Public, &[seed_peer]);
        eng.run_rounds(20);
        assert!(!eng.view_of(newbie).is_empty());
        // Someone knows the newbie.
        let known: usize = eng
            .alive_peers()
            .collect::<Vec<_>>()
            .iter()
            .filter(|p| eng.view_of(**p).contains(newbie))
            .count();
        assert!(known > 0, "joining peer never advertised");
    }

    #[test]
    fn tail_selection_and_swapper_run() {
        let cfg = GossipConfig {
            selection: SelectionPolicy::Tail,
            merge: MergePolicy::Swapper,
            ..GossipConfig::default()
        };
        let mut eng = BaselineEngine::new(cfg, NetConfig::default(), 11);
        for _ in 0..30 {
            eng.add_peer(NatClass::Public);
        }
        eng.bootstrap_random_public(8);
        eng.start();
        eng.run_rounds(25);
        assert!(eng.stats().responses_received > 0);
        for p in eng.alive_peers().collect::<Vec<_>>() {
            assert!(!eng.view_of(p).is_empty());
        }
    }

    #[test]
    fn traffic_is_accounted() {
        let mut eng = engine_with(10, 0, NatType::PortRestrictedCone, 13);
        eng.run_rounds(10);
        let total: u64 = eng
            .alive_peers()
            .collect::<Vec<_>>()
            .iter()
            .map(|p| eng.net().stats_of(*p).bytes_total())
            .sum();
        assert!(total > 0);
    }

    #[test]
    #[should_panic(expected = "engine already started")]
    fn double_start_panics() {
        let mut eng = engine_with(5, 0, NatType::PortRestrictedCone, 1);
        eng.start();
    }

    #[test]
    fn staleness_emerges_from_nat_filters() {
        // With many PRC peers, some requests die at NAT boxes: completion
        // drops below initiation.
        let mut eng = engine_with(8, 32, NatType::PortRestrictedCone, 15);
        eng.run_rounds(50);
        let s = eng.stats();
        assert!(
            s.requests_received < s.initiated,
            "NATs must drop some requests: {} received of {}",
            s.requests_received,
            s.initiated
        );
        let drops = eng.net().drop_counters();
        assert!(drops.no_mapping + drops.filtered > 0, "drops must be NAT-caused: {drops:?}");
    }

    #[test]
    fn sample_log_capture() {
        let mut eng = engine_with(20, 0, NatType::PortRestrictedCone, 17);
        eng.enable_sample_log();
        eng.run_rounds(10);
        let log = eng.sample_log().expect("enabled");
        assert!(!log.is_empty());
        assert!(log.iter().all(|id| (*id as usize) < eng.net().peer_count()));
    }

    #[test]
    fn empty_view_rounds_are_counted() {
        // A peer bootstrapped with no contacts skips rounds.
        let mut eng = BaselineEngine::new(GossipConfig::default(), NetConfig::default(), 19);
        eng.add_peer(NatClass::Public);
        eng.add_peer(NatClass::Public);
        // No bootstrap: views empty.
        eng.start();
        eng.run_rounds(5);
        assert!(eng.stats().empty_view_rounds > 0);
        assert_eq!(eng.stats().initiated, 0);
    }

    #[test]
    fn full_cone_population_behaves_like_public() {
        let mut fc = engine_with(5, 35, NatType::FullCone, 23);
        fc.run_rounds(40);
        let fc_failures = {
            let d = fc.net().drop_counters();
            d.no_mapping + d.filtered
        };
        let mut prc = engine_with(5, 35, NatType::PortRestrictedCone, 23);
        prc.run_rounds(40);
        let prc_failures = {
            let d = prc.net().drop_counters();
            d.no_mapping + d.filtered
        };
        assert!(
            fc_failures * 10 < prc_failures.max(1),
            "FC ({fc_failures}) must drop far less than PRC ({prc_failures})"
        );
    }

    #[test]
    fn flight_slab_recycles_slots() {
        // The slab must converge to the high-water mark of concurrent
        // in-flight datagrams: slots recycle, no monotonic growth.
        let mut eng = engine_with(30, 10, NatType::PortRestrictedCone, 33);
        eng.run_rounds(20);
        let high = eng.flights.slot_count();
        assert!(high > 0, "warm-up must have scheduled deliveries");
        eng.run_rounds(1_000);
        assert!(
            eng.flights.slot_count() <= high * 2 + 8,
            "flight slab grew from {high} to {} slots over 1k rounds",
            eng.flights.slot_count()
        );
    }

    #[test]
    fn sparse_bootstrap_fills_views_with_publics() {
        let mut eng = BaselineEngine::new(GossipConfig::default(), NetConfig::default(), 51);
        for i in 0..60u32 {
            let class = if i % 3 == 0 {
                NatClass::Public
            } else {
                NatClass::Natted(NatType::PortRestrictedCone)
            };
            eng.add_peer(class);
        }
        eng.bootstrap_random_public_sparse(8);
        for p in eng.alive_peers().collect::<Vec<_>>() {
            let v = eng.view_of(p);
            assert_eq!(v.len(), 8, "view of {p} not filled");
            assert!(!v.contains(p), "self reference at {p}");
            assert!(v.iter().all(|d| d.class.is_public()), "non-public bootstrap entry at {p}");
        }
        // Deterministic given the seed.
        let mut eng2 = BaselineEngine::new(GossipConfig::default(), NetConfig::default(), 51);
        for i in 0..60u32 {
            let class = if i % 3 == 0 {
                NatClass::Public
            } else {
                NatClass::Natted(NatType::PortRestrictedCone)
            };
            eng2.add_peer(class);
        }
        eng2.bootstrap_random_public_sparse(8);
        for p in eng.alive_peers().collect::<Vec<_>>() {
            assert_eq!(eng.view_of(p).ids(), eng2.view_of(p).ids());
        }
    }

    #[test]
    fn killed_peers_views_freeze() {
        let mut eng = engine_with(20, 0, NatType::PortRestrictedCone, 27);
        eng.run_rounds(10);
        let victim = eng.alive_peers().next().unwrap();
        let before: Vec<PeerId> = eng.view_of(victim).ids();
        eng.kill_peers(&[victim]);
        eng.run_rounds(20);
        assert_eq!(eng.view_of(victim).ids(), before, "dead peer's view must not change");
    }
}
