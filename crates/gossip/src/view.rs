//! The partial view: a bounded, duplicate-free set of node descriptors.

use nylon_net::PeerId;
use nylon_sim::SimRng;

use crate::descriptor::NodeDescriptor;
use crate::policy::{MergePolicy, SelectionPolicy};

/// A peer's partial view of the network.
///
/// Invariants maintained by every operation:
///
/// * at most `capacity` entries;
/// * no duplicate peer ids (merging keeps the youngest copy);
/// * never contains the owner itself.
///
/// ```
/// use nylon_gossip::{NodeDescriptor, PartialView};
/// use nylon_net::{Endpoint, Ip, NatClass, PeerId, Port};
///
/// let mut view = PartialView::new(PeerId(0), 3);
/// for i in 1..=3u32 {
///     view.insert(NodeDescriptor::new(
///         PeerId(i),
///         Endpoint::new(Ip(i), Port(9000)),
///         NatClass::Public,
///     ));
/// }
/// assert_eq!(view.len(), 3);
/// assert!(view.contains(PeerId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct PartialView {
    owner: PeerId,
    capacity: usize,
    entries: Vec<NodeDescriptor>,
}

impl PartialView {
    /// An empty view owned by `owner` holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(owner: PeerId, capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        PartialView { owner, capacity, entries: Vec::with_capacity(capacity) }
    }

    /// The peer owning this view.
    pub fn owner(&self) -> PeerId {
        self.owner
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the view holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the entries in storage order.
    pub fn iter(&self) -> std::slice::Iter<'_, NodeDescriptor> {
        self.entries.iter()
    }

    /// The entries as a slice.
    pub fn as_slice(&self) -> &[NodeDescriptor] {
        &self.entries
    }

    /// The ids of all entries.
    pub fn ids(&self) -> Vec<PeerId> {
        self.entries.iter().map(|d| d.id).collect()
    }

    /// `true` if an entry for `id` is present.
    pub fn contains(&self, id: PeerId) -> bool {
        self.entries.iter().any(|d| d.id == id)
    }

    /// The entry for `id`, if present.
    pub fn get(&self, id: PeerId) -> Option<&NodeDescriptor> {
        self.entries.iter().find(|d| d.id == id)
    }

    /// Inserts a descriptor.
    ///
    /// Self-references are ignored. If the peer is already present the
    /// *younger* copy wins. If the view is full, the oldest entry is evicted
    /// to make room (bootstrap/maintenance path; shuffle merging goes
    /// through [`PartialView::merge_and_truncate`]).
    pub fn insert(&mut self, d: NodeDescriptor) {
        if d.id == self.owner {
            return;
        }
        if let Some(existing) = self.entries.iter_mut().find(|e| e.id == d.id) {
            if d.age < existing.age {
                *existing = d;
            }
            return;
        }
        if self.entries.len() == self.capacity {
            if let Some((idx, oldest)) = self.entries.iter().enumerate().max_by_key(|(_, e)| e.age)
            {
                if oldest.age >= d.age {
                    self.entries[idx] = d;
                }
                return;
            }
        }
        self.entries.push(d);
    }

    /// Removes the entry for `id`, returning it if it was present.
    pub fn remove(&mut self, id: PeerId) -> Option<NodeDescriptor> {
        let idx = self.entries.iter().position(|d| d.id == id)?;
        Some(self.entries.remove(idx))
    }

    /// Retains only entries for which the predicate holds.
    pub fn retain<F: FnMut(&NodeDescriptor) -> bool>(&mut self, f: F) {
        self.entries.retain(f);
    }

    /// Increments every entry's age by one (called once per shuffle
    /// period, Figure 1 line 7/12 of the paper).
    pub fn increase_age(&mut self) {
        for d in &mut self.entries {
            d.age = d.age.saturating_add(1);
        }
    }

    /// Selects the gossip target per the selection policy: a uniformly
    /// random entry, or the oldest one ("tail").
    pub fn select_target(
        &self,
        policy: SelectionPolicy,
        rng: &mut SimRng,
    ) -> Option<NodeDescriptor> {
        match policy {
            SelectionPolicy::Rand => rng.pick(&self.entries).copied(),
            SelectionPolicy::Tail => self.entries.iter().max_by_key(|d| d.age).copied(),
        }
    }

    /// Merges descriptors received in a shuffle and truncates back to
    /// capacity per the merge policy (Figure 1 `merge_and_truncate`).
    ///
    /// * `received` — the descriptors shipped by the partner;
    /// * `sent` — the ids this peer shipped in the same exchange (used by
    ///   [`MergePolicy::Swapper`] to drop them first).
    ///
    /// Duplicates keep the youngest copy; self-references are dropped.
    pub fn merge_and_truncate(
        &mut self,
        received: &[NodeDescriptor],
        sent: &[PeerId],
        policy: MergePolicy,
        rng: &mut SimRng,
    ) {
        // Cheap membership filter for the dedup scan: one bit per id
        // (mod 64). A clear bit proves the id is absent, so the common
        // case — a received descriptor not in the view — pushes without
        // scanning; only possible collisions pay the exact linear check.
        let mut mask = 0u64;
        for e in &self.entries {
            mask |= 1 << (e.id.0 & 63);
        }
        for d in received {
            if d.id == self.owner {
                continue;
            }
            let bit = 1u64 << (d.id.0 & 63);
            if mask & bit == 0 {
                self.entries.push(*d);
                mask |= bit;
                continue;
            }
            match self.entries.iter_mut().find(|e| e.id == d.id) {
                Some(existing) => {
                    if d.age < existing.age {
                        *existing = *d;
                    }
                }
                None => self.entries.push(*d),
            }
        }
        if self.entries.len() <= self.capacity {
            return;
        }
        let excess = self.entries.len() - self.capacity;
        match policy {
            MergePolicy::Blind => {
                for _ in 0..excess {
                    let idx = rng
                        .pick_index(self.entries.len())
                        .expect("entries non-empty while over capacity");
                    self.entries.swap_remove(idx);
                }
            }
            MergePolicy::Healer => {
                // Drop the `excess` oldest entries. Ties are broken at
                // random: a stable sort would systematically favour
                // incumbents over freshly appended descriptors of equal age,
                // starving newly joined peers out of every view.
                rng.shuffle(&mut self.entries);
                self.select_youngest_stable();
            }
            MergePolicy::Swapper => {
                let mut to_drop = excess;
                // First drop what we shipped to the partner (but never an
                // entry the partner just refreshed for us: those were
                // deduplicated above and keep their younger age, which we
                // detect by membership in `received` with a younger copy).
                let mut idx = 0;
                while to_drop > 0 && idx < self.entries.len() {
                    let id = self.entries[idx].id;
                    let was_sent = sent.contains(&id);
                    let was_received = received.iter().any(|r| r.id == id);
                    if was_sent && !was_received {
                        self.entries.swap_remove(idx);
                        to_drop -= 1;
                    } else {
                        idx += 1;
                    }
                }
                // Any remainder: drop random entries.
                for _ in 0..to_drop {
                    let idx = rng
                        .pick_index(self.entries.len())
                        .expect("entries non-empty while over capacity");
                    self.entries.swap_remove(idx);
                }
            }
        }
        debug_assert!(self.entries.len() <= self.capacity);
    }

    /// Keeps the `capacity` youngest entries, in age order with ties in
    /// current array order — exactly the truncated result of a stable
    /// `sort_by_key(age)`, without the sort (Rust's stable sort allocates a
    /// merge buffer; this is in place and allocation-free).
    ///
    /// Bounded stable selection: `entries[0..k]` is maintained as the
    /// sorted prefix of the youngest entries seen so far (`k <= capacity`).
    /// Each element either inserts into the prefix at its stable position
    /// (after every kept entry of age `<=` its own, displacing the current
    /// last when the prefix is full) or is skipped because the stable sort
    /// would have placed it past the capacity cut. O(n · capacity) worst
    /// case over a few dozen 20-byte entries — cheaper than the sort's
    /// allocation alone. Equivalence to the sort is proven by
    /// `prop_merge_matches_reference` (packed-key path) and
    /// `oversized_merge_matches_reference` (the n > 256 fallback).
    fn select_youngest_stable(&mut self) {
        let cap = self.capacity;
        let n = self.entries.len();
        debug_assert!(n > cap);
        if n <= 256 {
            // Pack (age, position) into one u32 key per entry: sorting the
            // keys ascending *is* the stable sort by age (the position
            // bits break ties in original order), and the 20-byte entries
            // move exactly once, in the final gather — no merge-sort
            // allocation, no descriptor shifting.
            let mut keys = [0u32; 256];
            for (i, e) in self.entries.iter().enumerate() {
                keys[i] = ((e.age as u32) << 8) | i as u32;
            }
            keys[..n].sort_unstable();
            // Gather the `cap` youngest into the vec's tail (spare
            // capacity after the first merge), then slide them down.
            for &key in &keys[..cap] {
                let e = self.entries[(key & 0xFF) as usize];
                self.entries.push(e);
            }
            self.entries.copy_within(n.., 0);
            self.entries.truncate(cap);
            return;
        }
        // Oversized views: bounded stable insertion selection, in place.
        let mut k = 0usize;
        for i in 0..n {
            let d = self.entries[i];
            if k == cap {
                if self.entries[k - 1].age <= d.age {
                    continue; // would sort at index >= cap: dropped
                }
                k -= 1; // d displaces the currently oldest kept entry
            }
            // Shift the strictly-older tail of the prefix right by one and
            // drop `d` in front of it (stable: equal ages keep incumbents
            // in front).
            let mut j = k;
            while j > 0 && self.entries[j - 1].age > d.age {
                self.entries[j] = self.entries[j - 1];
                j -= 1;
            }
            self.entries[j] = d;
            k += 1;
        }
        self.entries.truncate(cap);
    }

    /// The descriptors to ship in a shuffle: the whole view plus a fresh
    /// self-descriptor, as in Figure 1 of the paper (views are exchanged in
    /// full; the self-descriptor is what injects new peers into the
    /// overlay).
    pub fn shuffle_payload(&self, self_descriptor: NodeDescriptor) -> Vec<NodeDescriptor> {
        let mut out = Vec::with_capacity(self.entries.len() + 1);
        self.write_shuffle_payload(self_descriptor, &mut out);
        out
    }

    /// [`PartialView::shuffle_payload`] into a caller-provided buffer
    /// (cleared first), so engines can recycle a pooled allocation instead
    /// of building a fresh `Vec` every exchange.
    pub fn write_shuffle_payload(
        &self,
        self_descriptor: NodeDescriptor,
        out: &mut Vec<NodeDescriptor>,
    ) {
        out.clear();
        out.reserve(self.entries.len() + 1);
        out.push(self_descriptor.refreshed());
        out.extend(self.entries.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nylon_net::{Endpoint, Ip, NatClass, Port};
    use proptest::prelude::*;

    impl PartialView {
        /// The pre-PR-5 `merge_and_truncate`, kept as the executable
        /// specification: the healer path is the shuffle + stable
        /// `sort_by_key(age)` + truncate the bounded selection replaced.
        /// `prop_merge_matches_reference` demands identical view contents
        /// *and* identical RNG consumption across all policies.
        fn merge_and_truncate_reference(
            &mut self,
            received: &[NodeDescriptor],
            sent: &[PeerId],
            policy: MergePolicy,
            rng: &mut SimRng,
        ) {
            for d in received {
                if d.id == self.owner {
                    continue;
                }
                match self.entries.iter_mut().find(|e| e.id == d.id) {
                    Some(existing) => {
                        if d.age < existing.age {
                            *existing = *d;
                        }
                    }
                    None => self.entries.push(*d),
                }
            }
            if self.entries.len() <= self.capacity {
                return;
            }
            let excess = self.entries.len() - self.capacity;
            match policy {
                MergePolicy::Blind => {
                    for _ in 0..excess {
                        let idx = rng
                            .pick_index(self.entries.len())
                            .expect("entries non-empty while over capacity");
                        self.entries.swap_remove(idx);
                    }
                }
                MergePolicy::Healer => {
                    rng.shuffle(&mut self.entries);
                    self.entries.sort_by_key(|d| d.age);
                    self.entries.truncate(self.capacity);
                }
                MergePolicy::Swapper => {
                    let mut to_drop = excess;
                    let mut idx = 0;
                    while to_drop > 0 && idx < self.entries.len() {
                        let id = self.entries[idx].id;
                        let was_sent = sent.contains(&id);
                        let was_received = received.iter().any(|r| r.id == id);
                        if was_sent && !was_received {
                            self.entries.swap_remove(idx);
                            to_drop -= 1;
                        } else {
                            idx += 1;
                        }
                    }
                    for _ in 0..to_drop {
                        let idx = rng
                            .pick_index(self.entries.len())
                            .expect("entries non-empty while over capacity");
                        self.entries.swap_remove(idx);
                    }
                }
            }
        }
    }

    fn d(id: u32, age: u16) -> NodeDescriptor {
        let mut desc = NodeDescriptor::new(
            PeerId(id),
            Endpoint::new(Ip(0x0100_0000 + id), Port(9000)),
            NatClass::Public,
        );
        desc.age = age;
        desc
    }

    fn filled(owner: u32, cap: usize, ids: &[(u32, u16)]) -> PartialView {
        let mut v = PartialView::new(PeerId(owner), cap);
        for (id, age) in ids {
            v.insert(d(*id, *age));
        }
        v
    }

    #[test]
    fn insert_rejects_self() {
        let mut v = PartialView::new(PeerId(0), 4);
        v.insert(d(0, 0));
        assert!(v.is_empty());
    }

    #[test]
    fn insert_dedups_keeping_youngest() {
        let mut v = PartialView::new(PeerId(0), 4);
        v.insert(d(1, 5));
        v.insert(d(1, 2));
        assert_eq!(v.len(), 1);
        assert_eq!(v.get(PeerId(1)).unwrap().age, 2);
        // An older copy does not replace a younger one.
        v.insert(d(1, 9));
        assert_eq!(v.get(PeerId(1)).unwrap().age, 2);
    }

    #[test]
    fn insert_when_full_evicts_oldest() {
        let mut v = filled(0, 3, &[(1, 9), (2, 1), (3, 4)]);
        v.insert(d(4, 0));
        assert_eq!(v.len(), 3);
        assert!(!v.contains(PeerId(1)), "oldest entry must be evicted");
        assert!(v.contains(PeerId(4)));
    }

    #[test]
    fn insert_when_full_keeps_younger_incumbents() {
        let mut v = filled(0, 3, &[(1, 0), (2, 1), (3, 2)]);
        v.insert(d(4, 10));
        assert_eq!(v.len(), 3);
        assert!(!v.contains(PeerId(4)), "older newcomer must not displace younger entries");
    }

    #[test]
    fn remove_returns_entry() {
        let mut v = filled(0, 3, &[(1, 0), (2, 1)]);
        let gone = v.remove(PeerId(1)).unwrap();
        assert_eq!(gone.id, PeerId(1));
        assert!(!v.contains(PeerId(1)));
        assert!(v.remove(PeerId(42)).is_none());
    }

    #[test]
    fn increase_age_all_entries() {
        let mut v = filled(0, 3, &[(1, 0), (2, 7)]);
        v.increase_age();
        assert_eq!(v.get(PeerId(1)).unwrap().age, 1);
        assert_eq!(v.get(PeerId(2)).unwrap().age, 8);
    }

    #[test]
    fn select_tail_is_oldest() {
        let v = filled(0, 4, &[(1, 3), (2, 9), (3, 0)]);
        let mut rng = SimRng::new(1);
        let t = v.select_target(SelectionPolicy::Tail, &mut rng).unwrap();
        assert_eq!(t.id, PeerId(2));
    }

    #[test]
    fn select_rand_covers_entries() {
        let v = filled(0, 4, &[(1, 0), (2, 0), (3, 0)]);
        let mut rng = SimRng::new(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(v.select_target(SelectionPolicy::Rand, &mut rng).unwrap().id);
        }
        assert_eq!(seen.len(), 3, "random selection must reach every entry");
    }

    #[test]
    fn select_from_empty_is_none() {
        let v = PartialView::new(PeerId(0), 4);
        let mut rng = SimRng::new(7);
        assert!(v.select_target(SelectionPolicy::Rand, &mut rng).is_none());
        assert!(v.select_target(SelectionPolicy::Tail, &mut rng).is_none());
    }

    #[test]
    fn merge_healer_keeps_youngest() {
        let mut v = filled(0, 3, &[(1, 8), (2, 6), (3, 4)]);
        let received = vec![d(4, 0), d(5, 1)];
        let mut rng = SimRng::new(1);
        v.merge_and_truncate(&received, &[], MergePolicy::Healer, &mut rng);
        assert_eq!(v.len(), 3);
        let mut ids = v.ids();
        ids.sort_by_key(|p| p.0);
        assert_eq!(ids, vec![PeerId(3), PeerId(4), PeerId(5)]);
    }

    #[test]
    fn merge_updates_age_of_duplicates() {
        let mut v = filled(0, 3, &[(1, 8)]);
        let mut rng = SimRng::new(1);
        v.merge_and_truncate(&[d(1, 2)], &[], MergePolicy::Healer, &mut rng);
        assert_eq!(v.get(PeerId(1)).unwrap().age, 2);
        // Older incoming copy does not regress the age.
        v.merge_and_truncate(&[d(1, 11)], &[], MergePolicy::Healer, &mut rng);
        assert_eq!(v.get(PeerId(1)).unwrap().age, 2);
    }

    #[test]
    fn merge_drops_self_references() {
        let mut v = PartialView::new(PeerId(0), 3);
        let mut rng = SimRng::new(1);
        v.merge_and_truncate(&[d(0, 0), d(1, 0)], &[], MergePolicy::Healer, &mut rng);
        assert!(!v.contains(PeerId(0)));
        assert!(v.contains(PeerId(1)));
    }

    #[test]
    fn merge_swapper_drops_sent_first() {
        let mut v = filled(0, 3, &[(1, 0), (2, 0), (3, 0)]);
        let sent = v.ids();
        let received = vec![d(4, 5), d(5, 5), d(6, 5)];
        let mut rng = SimRng::new(1);
        v.merge_and_truncate(&received, &sent, MergePolicy::Swapper, &mut rng);
        assert_eq!(v.len(), 3);
        let mut ids = v.ids();
        ids.sort_by_key(|p| p.0);
        assert_eq!(ids, vec![PeerId(4), PeerId(5), PeerId(6)], "swapper must keep received");
    }

    #[test]
    fn merge_blind_keeps_capacity() {
        let mut v = filled(0, 5, &[(1, 0), (2, 1), (3, 2), (4, 3), (5, 4)]);
        let received: Vec<NodeDescriptor> = (6..12).map(|i| d(i, 0)).collect();
        let mut rng = SimRng::new(1);
        v.merge_and_truncate(&received, &[], MergePolicy::Blind, &mut rng);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn shuffle_payload_fresh_self_first() {
        let v = filled(7, 3, &[(1, 4), (2, 2)]);
        let mut self_d = d(7, 9);
        self_d.age = 9;
        let payload = v.shuffle_payload(self_d);
        assert_eq!(payload.len(), 3);
        assert_eq!(payload[0].id, PeerId(7));
        assert_eq!(payload[0].age, 0, "self descriptor must be refreshed");
    }

    #[test]
    #[should_panic(expected = "view capacity must be positive")]
    fn zero_capacity_panics() {
        PartialView::new(PeerId(0), 0);
    }

    /// The packed-key selection only handles up to 256 over-capacity
    /// entries; this drives the insertion-selection fallback (n > 256)
    /// against the reference implementation, which the proptest (views
    /// of at most ~50 entries) never reaches.
    #[test]
    fn oversized_merge_matches_reference() {
        for seed in 0..8u64 {
            let mut fill_rng = SimRng::new(seed ^ 0x0051_3E00);
            let cap = 300;
            let mut v_new = PartialView::new(PeerId(0), cap);
            for i in 1..=cap as u32 {
                v_new.insert(d(i, fill_rng.gen_range(0..10) as u16));
            }
            let mut v_ref = v_new.clone();
            // 120 received: duplicates of existing ids and fresh ones,
            // with colliding ages — n reaches ~420 > 256.
            let received: Vec<NodeDescriptor> = (0..120u32)
                .map(|_| d(fill_rng.gen_range(1..500), fill_rng.gen_range(0..10) as u16))
                .collect();
            let sent = v_new.ids();
            let mut rng_new = SimRng::new(seed);
            let mut rng_ref = SimRng::new(seed);
            v_new.merge_and_truncate(&received, &sent, MergePolicy::Healer, &mut rng_new);
            v_ref.merge_and_truncate_reference(&received, &sent, MergePolicy::Healer, &mut rng_ref);
            assert_eq!(
                v_new.as_slice(),
                v_ref.as_slice(),
                "oversized healer diverged (seed {seed})"
            );
            assert_eq!(
                rng_new.gen_u64(),
                rng_ref.gen_u64(),
                "RNG consumption diverged (seed {seed})"
            );
        }
    }

    proptest! {
        /// Invariants hold after arbitrary merge sequences: bounded size, no
        /// duplicates, no self-reference.
        #[test]
        fn prop_merge_invariants(
            seed in any::<u64>(),
            cap in 1usize..12,
            batches in proptest::collection::vec(
                proptest::collection::vec((0u32..30, 0u16..20), 0..20),
                1..8,
            ),
        ) {
            let mut rng = SimRng::new(seed);
            let mut v = PartialView::new(PeerId(0), cap);
            for (bi, batch) in batches.iter().enumerate() {
                let received: Vec<NodeDescriptor> =
                    batch.iter().map(|(id, age)| d(*id, *age)).collect();
                let sent = v.ids();
                let policy = match bi % 3 {
                    0 => MergePolicy::Blind,
                    1 => MergePolicy::Healer,
                    _ => MergePolicy::Swapper,
                };
                v.merge_and_truncate(&received, &sent, policy, &mut rng);
                prop_assert!(v.len() <= cap, "over capacity");
                prop_assert!(!v.contains(PeerId(0)), "self reference");
                let mut ids = v.ids();
                ids.sort_by_key(|p| p.0);
                let before = ids.len();
                ids.dedup();
                prop_assert_eq!(ids.len(), before, "duplicate ids");
            }
        }

        /// The PR-5 differential oracle: the rewritten merge must behave
        /// *bit-identically* to the retained pre-rewrite implementation —
        /// same resulting entries in the same storage order, and the same
        /// number of RNG draws — across all three policies, duplicate ids
        /// at differing ages, self-references, and far-over-capacity
        /// batches. Storage order and RNG consumption both feed later
        /// random choices, so replay determinism rides on this.
        #[test]
        fn prop_merge_matches_reference(
            seed in any::<u64>(),
            cap in 1usize..12,
            batches in proptest::collection::vec(
                proptest::collection::vec((0u32..24, 0u16..8), 0..40),
                1..6,
            ),
        ) {
            let mut rng_new = SimRng::new(seed);
            let mut rng_ref = SimRng::new(seed);
            let mut v_new = PartialView::new(PeerId(0), cap);
            let mut v_ref = PartialView::new(PeerId(0), cap);
            for (bi, batch) in batches.iter().enumerate() {
                // Narrow id/age ranges force duplicates and age ties; id 0
                // is the owner, so self-references are exercised too.
                let received: Vec<NodeDescriptor> =
                    batch.iter().map(|(id, age)| d(*id, *age)).collect();
                let sent = v_new.ids();
                let policy = match bi % 3 {
                    0 => MergePolicy::Healer,
                    1 => MergePolicy::Swapper,
                    _ => MergePolicy::Blind,
                };
                v_new.merge_and_truncate(&received, &sent, policy, &mut rng_new);
                v_ref.merge_and_truncate_reference(&received, &sent, policy, &mut rng_ref);
                prop_assert_eq!(
                    v_new.as_slice(),
                    v_ref.as_slice(),
                    "entry order diverged from reference after batch {} ({:?})",
                    bi,
                    policy
                );
                prop_assert_eq!(
                    rng_new.gen_u64(),
                    rng_ref.gen_u64(),
                    "RNG consumption diverged from reference after batch {} ({:?})",
                    bi,
                    policy
                );
            }
        }

        /// Healer truncation keeps a youngest-subset: max kept age <= min
        /// dropped age.
        #[test]
        fn prop_healer_keeps_youngest(
            seed in any::<u64>(),
            entries in proptest::collection::vec((1u32..100, 0u16..50), 6..30),
        ) {
            let mut uniq = std::collections::HashMap::new();
            for (id, age) in &entries {
                uniq.entry(*id).or_insert(*age);
            }
            prop_assume!(uniq.len() > 5);
            let cap = 5;
            let mut v = PartialView::new(PeerId(0), cap);
            let received: Vec<NodeDescriptor> =
                uniq.iter().map(|(id, age)| d(*id, *age)).collect();
            let mut rng = SimRng::new(seed);
            v.merge_and_truncate(&received, &[], MergePolicy::Healer, &mut rng);
            prop_assert_eq!(v.len(), cap);
            let max_kept = v.iter().map(|e| e.age).max().unwrap();
            let kept_ids: std::collections::HashSet<u32> =
                v.iter().map(|e| e.id.0).collect();
            let min_dropped = uniq
                .iter()
                .filter(|(id, _)| !kept_ids.contains(id))
                .map(|(_, age)| *age)
                .min()
                .unwrap();
            prop_assert!(max_kept <= min_dropped);
        }
    }
}
