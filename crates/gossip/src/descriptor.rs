//! Node descriptors: the unit of information exchanged by peer sampling.

use std::fmt;

use nylon_net::{Endpoint, NatClass, PeerId};

/// A reference to a peer as stored in views and shipped in shuffles.
///
/// Besides the peer id, a descriptor carries the *advertised endpoint* (the
/// stable public mapping for cone-natted peers, the unknown-port sentinel
/// for symmetric ones), the peer's NAT classification (learned during the
/// join handshake in a real deployment; Nylon's Figure 6 pseudocode branches
/// on it), and the gossip *age* driving the healer/tail policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeDescriptor {
    /// The peer this descriptor refers to.
    pub id: PeerId,
    /// The peer's advertised endpoint.
    pub addr: Endpoint,
    /// The peer's NAT classification.
    pub class: NatClass,
    /// Shuffle-period granularity age; 0 = freshly injected by the peer
    /// itself.
    pub age: u16,
}

impl NodeDescriptor {
    /// A fresh (age 0) descriptor.
    pub fn new(id: PeerId, addr: Endpoint, class: NatClass) -> Self {
        NodeDescriptor { id, addr, class, age: 0 }
    }

    /// Copy with age incremented (saturating).
    pub fn aged(mut self) -> Self {
        self.age = self.age.saturating_add(1);
        self
    }

    /// Copy with age reset to zero (used when a peer re-injects itself).
    pub fn refreshed(mut self) -> Self {
        self.age = 0;
        self
    }
}

impl fmt::Display for NodeDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{} ({}, age {})", self.id, self.addr, self.class, self.age)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nylon_net::{Ip, NatType, Port};

    fn desc() -> NodeDescriptor {
        NodeDescriptor::new(
            PeerId(3),
            Endpoint::new(Ip(0x0100_0003), Port(9000)),
            NatClass::Natted(NatType::RestrictedCone),
        )
    }

    #[test]
    fn new_is_age_zero() {
        assert_eq!(desc().age, 0);
    }

    #[test]
    fn aged_increments_saturating() {
        let d = desc().aged().aged();
        assert_eq!(d.age, 2);
        let mut old = desc();
        old.age = u16::MAX;
        assert_eq!(old.aged().age, u16::MAX);
    }

    #[test]
    fn refreshed_resets() {
        let d = desc().aged().aged().refreshed();
        assert_eq!(d.age, 0);
    }

    #[test]
    fn display_mentions_id_and_class() {
        let s = desc().to_string();
        assert!(s.contains("p3") && s.contains("RC"), "{s}");
    }
}
