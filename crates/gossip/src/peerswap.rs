//! PeerSwap: a swap-based peer sampler with randomness guarantees.
//!
//! The third protocol family next to the baseline and Nylon, modeled on
//! "PeerSwap: A Peer-Sampler with Randomness Guarantees" (which builds on
//! Cyclon-style exchanges): instead of merging whole overlapping view
//! copies like the baseline's healer/swapper policies, a peer periodically
//! *swaps a batch* with one uniformly chosen partner — it sheds the
//! partner's own entry, ships copies of a random batch plus a fresh
//! self-descriptor, and each side replaces the entries it shipped with the
//! ones it received. Entries circulate instead of multiplying, so the
//! global descriptor population evolves like a card shuffle, which is
//! where the randomness argument of the paper comes from and what the
//! `randomness` figure measures head-to-head against the other engines.
//!
//! Losses double as failure detection, exactly like Cyclon: the initiator
//! sheds the partner's entry when it starts a swap, and if no response
//! ever arrives (dead partner, or a NAT silently eating the request — the
//! damage this repo studies), that entry stays gone. A view thus purges
//! references it cannot exercise at a bounded cost of one entry per
//! silent round, while committed exchanges keep refilling it.
//!
//! The engine is a full [`PeerSampler`](crate::PeerSampler) +
//! [`ShardWorker`]/[`ShardSampler`](crate::ShardSampler) citizen and
//! reuses [`BaselineMsg`] as its wire message (a swap request/response is
//! structurally a shuffle request/response), so the transport crate's
//! versioned codec carries PeerSwap traffic unmodified.

use nylon_faults::{FaultPlan, FaultRuntime, FaultStats};
use nylon_net::{
    BufferPool, Delivery, Endpoint, InFlight, NatClass, NetConfig, Network, Outbound, PeerId, Slab,
    SlabKey,
};
use nylon_sim::{ShardPlan, ShardWorker, Sim, SimDuration, SimRng, SimTime};

use crate::descriptor::NodeDescriptor;
use crate::engine::{sort_tick_batch, BaselineMsg, ShardCtx};
use crate::policy::SelectionPolicy;
use crate::view::PartialView;

/// Configuration of the PeerSwap protocol.
#[derive(Debug, Clone)]
pub struct PeerSwapConfig {
    /// Maximum number of view entries.
    pub view_size: usize,
    /// Interval between two swaps initiated by a peer.
    pub shuffle_period: SimDuration,
    /// Descriptors shipped per swap message (the initiator ships its fresh
    /// self-descriptor plus copies of `swap_len - 1` random entries; the
    /// partner answers with copies of up to `swap_len` of its own).
    pub swap_len: usize,
    /// Wire-size model: bytes per shipped descriptor.
    pub entry_bytes: u32,
    /// Wire-size model: fixed per-message protocol header bytes.
    pub msg_header_bytes: u32,
}

impl Default for PeerSwapConfig {
    fn default() -> Self {
        PeerSwapConfig {
            view_size: 15,
            shuffle_period: SimDuration::from_secs(5),
            swap_len: 8,
            entry_bytes: 14,
            msg_header_bytes: 8,
        }
    }
}

impl PeerSwapConfig {
    /// Bytes on the wire for a message shipping `entries` descriptors
    /// (same model as [`crate::GossipConfig::message_bytes`]).
    pub fn message_bytes(&self, entries: usize) -> u32 {
        self.msg_header_bytes + self.entry_bytes * entries as u32
    }
}

/// Engine events; see [`crate::engine`] for the slab-handle rationale.
#[derive(Debug)]
enum Ev {
    /// A peer's swap timer fired.
    Swap(PeerId),
    /// A datagram arrives; the handle resolves in the flight slab.
    Deliver(SlabKey),
    /// Periodic NAT state garbage collection.
    Purge,
    /// The next fault-plan event is due (see [`nylon_faults`]).
    Fault,
}

const _: () = assert!(std::mem::size_of::<Ev>() <= 32, "Ev must stay slim for the timer wheel");

/// Aggregate PeerSwap counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerSwapStats {
    /// Swaps initiated (a partner was selected and a request sent).
    pub swaps_initiated: u64,
    /// Rounds skipped because the view was empty.
    pub empty_view_rounds: u64,
    /// Swap requests that reached their partner.
    pub requests_received: u64,
    /// Swap responses that reached the initiator (committed swaps).
    pub responses_received: u64,
    /// Swaps whose response never arrived within one period (NAT drops,
    /// dead partners); the shed partner entry stays gone — Cyclon-style
    /// failure detection.
    pub swaps_unanswered: u64,
}

impl PeerSwapStats {
    /// Adds another counter set into this one (per-shard merge; every
    /// event is counted on exactly one shard).
    pub fn merge(&mut self, other: &PeerSwapStats) {
        self.swaps_initiated += other.swaps_initiated;
        self.empty_view_rounds += other.empty_view_rounds;
        self.requests_received += other.requests_received;
        self.responses_received += other.responses_received;
        self.swaps_unanswered += other.swaps_unanswered;
    }
}

#[derive(Debug)]
struct Node {
    view: PartialView,
    rng: SimRng,
    /// The one outstanding swap: the partner plus the ids whose copies were
    /// shipped (these get replaced by the response's entries on commit).
    pending: Option<(PeerId, Vec<PeerId>)>,
}

/// Interval between NAT garbage-collection sweeps.
const PURGE_EVERY: SimDuration = SimDuration::from_secs(60);

/// The PeerSwap engine. Same lifecycle as the other engines: construct,
/// [`add_peer`](Self::add_peer), [`bootstrap_random_public`](Self::bootstrap_random_public),
/// [`start`](Self::start), then [`run_rounds`](Self::run_rounds).
#[derive(Debug)]
pub struct PeerSwapEngine {
    sim: Sim<Ev>,
    net: Network<BaselineMsg>,
    cfg: PeerSwapConfig,
    nodes: Vec<Node>,
    stats: PeerSwapStats,
    started: bool,
    sample_log: Option<Vec<u32>>,
    wire_tap: Option<Vec<Outbound<BaselineMsg>>>,
    payload_pool: BufferPool<NodeDescriptor>,
    id_pool: BufferPool<PeerId>,
    flights: Slab<InFlight<BaselineMsg>>,
    shard: Option<ShardCtx<BaselineMsg>>,
    /// `Some` when a fault plan is installed (see
    /// [`install_fault_plan`](Self::install_fault_plan)).
    faults: Option<FaultRuntime>,
}

impl PeerSwapEngine {
    /// Creates an engine; `seed` drives every random choice in the run.
    ///
    /// # Panics
    ///
    /// Panics on a view size above 128 (the batch sampler tracks chosen
    /// slots in a 128-bit mask, like the healer merge's id-membership
    /// masks).
    pub fn new(cfg: PeerSwapConfig, net_cfg: NetConfig, seed: u64) -> Self {
        assert!(cfg.view_size <= 128, "PeerSwap supports view sizes up to 128");
        let sim = Sim::new(seed);
        let net = Network::new(net_cfg, seed ^ 0x4E59_4C4F_4E00_0001);
        PeerSwapEngine {
            sim,
            net,
            cfg,
            nodes: Vec::new(),
            stats: PeerSwapStats::default(),
            started: false,
            sample_log: None,
            wire_tap: None,
            payload_pool: BufferPool::new(),
            id_pool: BufferPool::new(),
            flights: Slab::new(),
            shard: None,
            faults: None,
        }
    }

    /// Installs a compiled fault plan: applies its topology faults now and
    /// schedules its timed events. Call after the population is added and
    /// before bootstrap, so descriptors advertise post-CGN identities.
    ///
    /// # Panics
    ///
    /// Panics if the engine has already started or a plan is installed.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        assert!(!self.started, "install the fault plan before start()");
        assert!(self.faults.is_none(), "fault plan already installed");
        plan.apply_topology(&mut self.net);
        let count_global = self.shard.as_ref().is_none_or(|s| s.idx == 0);
        let rt = FaultRuntime::new(plan, count_global);
        if let Some(at) = rt.next_at() {
            self.sim.schedule_at(at, Ev::Fault);
        }
        self.faults = Some(rt);
    }

    /// Counters of faults applied so far (ownership-filtered in shard
    /// mode; see [`FaultStats`]).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats()).unwrap_or_default()
    }

    /// Turns this engine into worker `idx` of a sharded run (see
    /// [`crate::sharded`]).
    ///
    /// # Panics
    ///
    /// Panics if the engine has already been populated or started.
    pub fn set_shard(&mut self, plan: ShardPlan, idx: usize) {
        assert!(!self.started && self.nodes.is_empty(), "set_shard requires a fresh engine");
        self.shard = Some(ShardCtx::new(plan, idx));
    }

    /// Whether this engine materializes protocol state for `peer` — always
    /// true outside shard mode.
    fn owns(&self, peer: PeerId) -> bool {
        self.shard.as_ref().is_none_or(|s| s.owns(peer))
    }

    /// Total events processed by the local event loop.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Switches the engine to wire-tap mode (external transport carries
    /// the datagrams); see [`crate::BaselineEngine::enable_wire_tap`].
    pub fn enable_wire_tap(&mut self) {
        self.wire_tap = Some(Vec::new());
    }

    /// Drains the datagrams queued since the last call (wire-tap mode).
    pub fn take_outbound(&mut self) -> Vec<Outbound<BaselineMsg>> {
        self.wire_tap.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Injects a datagram received from an external transport.
    pub fn deliver_wire(&mut self, to: PeerId, from_ep: Endpoint, msg: BaselineMsg) {
        if !self.net.is_alive(to) {
            return;
        }
        self.net.note_received(to, self.payload_bytes(&msg));
        self.on_msg(to, from_ep, msg);
    }

    /// Modeled payload size of a message, per the config's wire-size model.
    fn payload_bytes(&self, msg: &BaselineMsg) -> u32 {
        match msg {
            BaselineMsg::Request { entries, .. } | BaselineMsg::Response { entries, .. } => {
                self.cfg.message_bytes(entries.len())
            }
        }
    }

    /// Sends `msg` to `to_ep`: through the fabric normally, or onto the
    /// wire-tap queue when an external transport carries the datagrams.
    fn send_msg(&mut self, from: PeerId, to_ep: Endpoint, msg: BaselineMsg) {
        let bytes = self.payload_bytes(&msg);
        if let Some(tap) = &mut self.wire_tap {
            tap.push(Outbound { from, dst: to_ep, payload_bytes: bytes, payload: msg });
            self.net.note_sent(from, bytes);
            return;
        }
        let now = self.sim.now();
        if let Some(flight) = self.net.send(now, from, to_ep, msg, bytes) {
            if let Some(ctx) = &mut self.shard {
                ctx.stage(&self.net, flight);
            } else {
                let at = flight.arrive_at;
                self.sim.schedule_at(at, Ev::Deliver(self.flights.insert(flight)));
            }
        }
    }

    /// Starts recording every swap-partner selection (peer ids, in
    /// selection order) for randomness analysis. Call before running.
    pub fn enable_sample_log(&mut self) {
        self.sample_log = Some(Vec::new());
    }

    /// The recorded partner selections, if logging was enabled.
    pub fn sample_log(&self) -> Option<&[u32]> {
        self.sample_log.as_deref()
    }

    /// The protocol configuration.
    pub fn config(&self) -> &PeerSwapConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The underlying network (for oracles and traffic stats).
    pub fn net(&self) -> &Network<BaselineMsg> {
        &self.net
    }

    /// Protocol counters.
    pub fn stats(&self) -> PeerSwapStats {
        self.stats
    }

    /// Reports kernel, net, and engine-layer telemetry into `out`.
    /// Read-only: see [`PeerSampler::obs_report`]'s contract.
    ///
    /// [`PeerSampler::obs_report`]: crate::PeerSampler::obs_report
    pub fn obs_report(&self, out: &mut nylon_obs::Report) {
        self.sim.obs_report(out);
        self.net.obs_report(out);
        self.payload_pool.obs_report(out);
        self.id_pool.obs_report(out);
        out.counter("engine.peerswap", "swaps_initiated", self.stats.swaps_initiated);
        out.counter("engine.peerswap", "empty_view_rounds", self.stats.empty_view_rounds);
        out.counter("engine.peerswap", "requests_received", self.stats.requests_received);
        out.counter("engine.peerswap", "responses_received", self.stats.responses_received);
        out.counter("engine.peerswap", "swaps_unanswered", self.stats.swaps_unanswered);
        if let Some(f) = &self.faults {
            f.obs_report(out);
        }
    }

    /// Adds a peer of the given NAT class and returns its id. A peer added
    /// to a running engine starts swapping one random phase into the next
    /// period.
    pub fn add_peer(&mut self, class: NatClass) -> PeerId {
        let id = self.net.add_peer(class);
        let rng = self.sim.rng().fork(0x6E6F_6465_0000_0000 | id.0 as u64);
        self.nodes.push(Node {
            view: PartialView::new(id, self.cfg.view_size),
            rng,
            pending: None,
        });
        if self.started && self.owns(id) {
            let phase = {
                let period = self.cfg.shuffle_period.as_millis();
                let node = &mut self.nodes[id.index()];
                SimDuration::from_millis(node.rng.gen_range(0..period))
            };
            self.sim.schedule_after(phase, Ev::Swap(id));
        }
        id
    }

    /// Enables a permanent UPnP/NAT-PMP port forwarding for a natted peer
    /// (no-op for public peers). Call before bootstrapping.
    pub fn enable_port_forwarding(&mut self, peer: PeerId) {
        let _ = self.net.enable_port_forwarding(peer);
    }

    /// Adds a peer whose initial view contains descriptors of `contacts`.
    pub fn add_peer_with_bootstrap(&mut self, class: NatClass, contacts: &[PeerId]) -> PeerId {
        let id = self.add_peer(class);
        for c in contacts {
            if *c == id || !self.net.is_alive(*c) {
                continue;
            }
            let d = NodeDescriptor::new(*c, self.net.identity_endpoint(*c), self.net.class_of(*c));
            self.nodes[id.index()].view.insert(d);
        }
        id
    }

    /// Fills every view with up to `per_view` uniformly chosen *public*
    /// peers (arbitrary peers when no public peer exists); same contract as
    /// [`crate::BaselineEngine::bootstrap_random_public`].
    pub fn bootstrap_random_public(&mut self, per_view: usize) {
        let publics: Vec<PeerId> =
            self.net.alive_peers().filter(|p| self.net.class_of(*p).is_public()).collect();
        let everyone: Vec<PeerId> = self.net.alive_peers().collect();
        let pool = if publics.is_empty() { everyone } else { publics };
        let all: Vec<PeerId> = self.net.alive_peers().collect();
        for p in all {
            if !self.owns(p) {
                continue; // other shards fill this node's view identically
            }
            let candidates: Vec<PeerId> = pool.iter().copied().filter(|q| *q != p).collect();
            let chosen = {
                let node = &mut self.nodes[p.index()];
                node.rng.sample_without_replacement(&candidates, per_view)
            };
            for q in chosen {
                let d = NodeDescriptor::new(q, self.net.identity_endpoint(q), self.net.class_of(q));
                self.nodes[p.index()].view.insert(d);
            }
        }
    }

    /// Schedules the first swap of every peer (random phase within one
    /// period) and the periodic NAT garbage collection.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self) {
        assert!(!self.started, "engine already started");
        self.started = true;
        let period = self.cfg.shuffle_period.as_millis();
        let peers: Vec<PeerId> = self.net.alive_peers().collect();
        for p in peers {
            if !self.owns(p) {
                continue; // only owned nodes get timers; streams stay pure
            }
            let phase = {
                let node = &mut self.nodes[p.index()];
                SimDuration::from_millis(node.rng.gen_range(0..period))
            };
            self.sim.schedule_after(phase, Ev::Swap(p));
        }
        self.sim.schedule_after(PURGE_EVERY, Ev::Purge);
    }

    /// Runs the simulation for `dur` of virtual time.
    pub fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.sim.now() + dur;
        while let Some((_, ev)) = self.sim.step_before(deadline) {
            self.handle(ev);
        }
        self.sim.advance_to(deadline);
    }

    /// Runs for `n` swap periods.
    pub fn run_rounds(&mut self, n: u64) {
        self.run_for(self.cfg.shuffle_period * n);
    }

    /// Kills a set of peers simultaneously (fail-stop churn).
    pub fn kill_peers(&mut self, peers: &[PeerId]) {
        for p in peers {
            self.net.kill_peer(*p);
        }
    }

    /// The view of a peer (dead peers keep their last view).
    pub fn view_of(&self, peer: PeerId) -> &PartialView {
        &self.nodes[peer.index()].view
    }

    /// Mutable view access (the adversary seam; see
    /// [`crate::PeerSampler::view_of_mut`]).
    pub fn view_of_mut(&mut self, peer: PeerId) -> &mut PartialView {
        &mut self.nodes[peer.index()].view
    }

    /// Iterator over alive peers.
    pub fn alive_peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.net.alive_peers()
    }

    /// A peer's fresh self-descriptor.
    fn self_descriptor(&self, peer: PeerId) -> NodeDescriptor {
        NodeDescriptor::new(peer, self.net.identity_endpoint(peer), self.net.class_of(peer))
    }

    /// Whether `holder` could communicate over this view entry right now.
    /// PeerSwap, like the baseline, addresses entries directly and has no
    /// traversal machinery, so usability is raw NAT reachability.
    pub fn edge_usable(&self, holder: PeerId, d: &NodeDescriptor) -> bool {
        d.id.index() < self.net.peer_count()
            && self.net.is_alive(d.id)
            && self.net.reachable(self.now(), holder, d.id, d.addr)
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Swap(p) => self.on_swap(p),
            Ev::Deliver(key) => {
                let flight = self.flights.remove(key);
                self.on_deliver(flight);
            }
            Ev::Purge => {
                let now = self.sim.now();
                self.net.purge_expired_nat_state(now);
                self.sim.schedule_after(PURGE_EVERY, Ev::Purge);
            }
            Ev::Fault => self.on_fault(),
        }
    }

    /// Copies `want` distinct random view entries of `peer` into `out`,
    /// recording their ids in `sent` (the replacement candidates when the
    /// counterpart batch arrives). Chosen slots are tracked in a 128-bit
    /// mask; `new` bounds the view size accordingly.
    fn sample_copies(
        node: &mut Node,
        want: usize,
        out: &mut Vec<NodeDescriptor>,
        sent: &mut Vec<PeerId>,
    ) {
        let len = node.view.len();
        let want = want.min(len);
        let mut chosen: u128 = 0;
        for _ in 0..want {
            let d = loop {
                let idx = node.rng.pick_index(len).expect("len > 0 since want <= len");
                if chosen & (1 << idx) == 0 {
                    chosen |= 1 << idx;
                    break node.view.as_slice()[idx];
                }
            };
            out.push(d);
            sent.push(d.id);
        }
    }

    /// Adopts a received batch into `peer`'s view: refresh duplicates,
    /// fill empty slots, then *replace* entries whose copies were shipped
    /// in the other direction (`sent`). Entries that fit nowhere are
    /// dropped — the view never grows past capacity and never evicts
    /// entries that were not part of the exchange.
    fn adopt(&mut self, peer: PeerId, received: &[NodeDescriptor], sent: &mut Vec<PeerId>) {
        let node = &mut self.nodes[peer.index()];
        for d in received {
            if d.id == peer {
                continue; // a peer never holds its own descriptor
            }
            if node.view.get(d.id).is_some() || node.view.len() < node.view.capacity() {
                node.view.insert(*d);
                continue;
            }
            while let Some(s) = sent.pop() {
                if node.view.remove(s).is_some() {
                    node.view.insert(*d);
                    break;
                }
            }
        }
    }

    /// One initiated swap: shed the partner's entry (it will be refilled by
    /// the response — or stay gone if the partner is unreachable), ship a
    /// fresh self-descriptor plus copies of a random batch.
    /// Applies due fault-plan events and re-arms for the next instant.
    /// Revived peers resume at their original phase: under a fault plan,
    /// dead peers' swap chains keep ticking idle (see
    /// [`on_swap`](Self::on_swap)).
    fn on_fault(&mut self) {
        let now = self.sim.now();
        let Some(rt) = self.faults.as_mut() else { return };
        let shard = self.shard.as_ref();
        rt.apply_due(now, &mut self.net, |p| shard.is_none_or(|s| s.owns(p)), &mut Vec::new());
        if let Some(at) = rt.next_at() {
            self.sim.schedule_at(at, Ev::Fault);
        }
    }

    fn on_swap(&mut self, p: PeerId) {
        if !self.net.is_alive(p) {
            // Dead peers stop swapping; the timer chain normally ends
            // here. Under a fault plan the chain keeps ticking idle so a
            // later Revive fault resumes swapping at the original phase.
            if self.faults.is_some() {
                self.sim.schedule_after(self.cfg.shuffle_period, Ev::Swap(p));
            }
            return;
        }
        let self_d = self.self_descriptor(p);
        // An unanswered previous swap is Cyclon-style failure detection:
        // the shed partner entry stays gone, nothing to roll back.
        if let Some((_, sent)) = self.nodes[p.index()].pending.take() {
            self.stats.swaps_unanswered += 1;
            self.id_pool.release(sent);
        }
        let target = {
            let node = &mut self.nodes[p.index()];
            node.view.select_target(SelectionPolicy::Rand, &mut node.rng)
        };
        match target {
            None => self.stats.empty_view_rounds += 1,
            Some(t) => {
                if let Some(log) = &mut self.sample_log {
                    log.push(t.id.0);
                }
                let mut payload = self.payload_pool.acquire();
                let mut sent = self.id_pool.acquire();
                // The fresh self-descriptor fills the slot the partner's
                // entry vacates on their side.
                payload.push(self_d);
                {
                    let node = &mut self.nodes[p.index()];
                    node.view.remove(t.id).expect("selected partner is in the view");
                    let extra = self.cfg.swap_len.saturating_sub(1);
                    Self::sample_copies(node, extra, &mut payload, &mut sent);
                    node.pending = Some((t.id, sent));
                }
                self.send_msg(p, t.addr, BaselineMsg::Request { from: p, entries: payload });
                self.stats.swaps_initiated += 1;
            }
        }
        self.nodes[p.index()].view.increase_age();
        self.sim.schedule_after(self.cfg.shuffle_period, Ev::Swap(p));
    }

    fn on_deliver(&mut self, flight: InFlight<BaselineMsg>) {
        let now = self.sim.now();
        let (to, from_ep, msg) = match self.net.deliver(now, flight) {
            Delivery::ToPeer { to, from_ep, payload } => (to, from_ep, payload),
            Delivery::Dropped { payload, .. } => {
                self.recycle_msg(payload);
                return;
            }
        };
        self.on_msg(to, from_ep, msg);
    }

    /// Returns a consumed message's entry buffer to the pool.
    fn recycle_msg(&mut self, msg: BaselineMsg) {
        match msg {
            BaselineMsg::Request { entries, .. } | BaselineMsg::Response { entries, .. } => {
                self.payload_pool.release(entries)
            }
        }
    }

    /// Protocol handling of a delivered message, independent of the
    /// carriage substrate.
    fn on_msg(&mut self, to: PeerId, from_ep: Endpoint, msg: BaselineMsg) {
        match msg {
            // The partner's side of a swap: answer with copies of an
            // equally sized batch, then replace those entries with the
            // received ones.
            BaselineMsg::Request { from, entries } => {
                self.stats.requests_received += 1;
                let mut reply = self.payload_pool.acquire();
                let mut sent = self.id_pool.acquire();
                {
                    let node = &mut self.nodes[to.index()];
                    Self::sample_copies(node, entries.len(), &mut reply, &mut sent);
                }
                // Reply to the observed source endpoint: travels back
                // through whatever hole the request opened.
                self.send_msg(to, from_ep, BaselineMsg::Response { from: to, entries: reply });
                self.adopt(to, &entries, &mut sent);
                self.id_pool.release(sent);
                self.payload_pool.release(entries);
                let _ = from;
            }
            // The initiator's side: the swap committed — replace the
            // shipped copies with what the partner gave up.
            BaselineMsg::Response { from, entries } => {
                self.stats.responses_received += 1;
                let pending = {
                    let node = &mut self.nodes[to.index()];
                    match node.pending.take() {
                        Some((partner, sent)) if partner == from => Some(sent),
                        other => {
                            // A response from an already written-off swap:
                            // keep any newer pending state intact and adopt
                            // without replacement rights.
                            node.pending = other;
                            None
                        }
                    }
                };
                let mut sent = pending.unwrap_or_else(|| self.id_pool.acquire());
                self.adopt(to, &entries, &mut sent);
                self.id_pool.release(sent);
                self.payload_pool.release(entries);
            }
        }
    }
}

impl crate::sampler::SamplerConfig for PeerSwapConfig {
    type Sampler = PeerSwapEngine;

    fn set_view_size(&mut self, view_size: usize) {
        self.view_size = view_size;
    }
}

impl crate::sampler::PeerSampler for PeerSwapEngine {
    type Config = PeerSwapConfig;

    fn with_seed(cfg: PeerSwapConfig, net_cfg: NetConfig, seed: u64) -> Self {
        PeerSwapEngine::new(cfg, net_cfg, seed)
    }

    fn add_peer(&mut self, class: NatClass) -> PeerId {
        PeerSwapEngine::add_peer(self, class)
    }

    fn enable_port_forwarding(&mut self, peer: PeerId) {
        PeerSwapEngine::enable_port_forwarding(self, peer);
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) {
        PeerSwapEngine::install_fault_plan(self, plan);
    }

    fn fault_stats(&self) -> FaultStats {
        PeerSwapEngine::fault_stats(self)
    }

    fn bootstrap_random_public(&mut self, per_view: usize) {
        PeerSwapEngine::bootstrap_random_public(self, per_view);
    }

    fn start(&mut self) {
        PeerSwapEngine::start(self);
    }

    fn run_for(&mut self, dur: SimDuration) {
        PeerSwapEngine::run_for(self, dur);
    }

    fn run_rounds(&mut self, n: u64) {
        PeerSwapEngine::run_rounds(self, n);
    }

    fn kill_peers(&mut self, peers: &[PeerId]) {
        PeerSwapEngine::kill_peers(self, peers);
    }

    fn now(&self) -> SimTime {
        PeerSwapEngine::now(self)
    }

    fn shuffle_period(&self) -> SimDuration {
        self.config().shuffle_period
    }

    fn peer_count(&self) -> usize {
        self.net().peer_count()
    }

    fn is_alive(&self, peer: PeerId) -> bool {
        self.net().is_alive(peer)
    }

    fn class_of(&self, peer: PeerId) -> NatClass {
        self.net().class_of(peer)
    }

    fn traffic_of(&self, peer: PeerId) -> nylon_net::TrafficStats {
        self.net().stats_of(peer)
    }

    fn alive_peers(&self) -> Vec<PeerId> {
        self.net().alive_peers().collect()
    }

    fn view_of(&self, peer: PeerId) -> &PartialView {
        PeerSwapEngine::view_of(self, peer)
    }

    fn view_of_mut(&mut self, peer: PeerId) -> &mut PartialView {
        PeerSwapEngine::view_of_mut(self, peer)
    }

    fn descriptor_of(&self, peer: PeerId) -> NodeDescriptor {
        self.self_descriptor(peer)
    }

    /// Like the baseline, PeerSwap addresses entries directly: usability
    /// is raw packet-level NAT reachability.
    fn edge_usable(&self, holder: PeerId, d: &NodeDescriptor) -> bool {
        PeerSwapEngine::edge_usable(self, holder, d)
    }

    fn obs_report(&self, out: &mut nylon_obs::Report) {
        PeerSwapEngine::obs_report(self, out);
    }
}

impl crate::sharded::ShardSampler for PeerSwapEngine {
    fn set_shard(&mut self, plan: ShardPlan, idx: usize) {
        PeerSwapEngine::set_shard(self, plan, idx);
    }

    fn net_config(&self) -> &NetConfig {
        self.net().config()
    }

    /// Raw reachability spans both ends' NAT state, exactly like the
    /// baseline: preview egress translation on the holder's shard, test
    /// ingress admission against the target's authoritative copy.
    fn edge_usable_sharded(
        holder_shard: &Self,
        target_shard: &Self,
        holder: PeerId,
        d: &NodeDescriptor,
    ) -> bool {
        if d.id.index() >= holder_shard.net().peer_count() || !holder_shard.net().is_alive(d.id) {
            return false;
        }
        let now = holder_shard.now();
        match holder_shard.net().egress_src_preview(now, holder, d.addr) {
            None => false,
            Some(src_ep) => target_shard.net().ingress_would_admit(now, d.id, d.addr, src_ep),
        }
    }
}

impl crate::sharded::Sharded<PeerSwapEngine> {
    /// Run-wide protocol counters: the per-shard counters summed (each
    /// protocol event is counted on exactly one shard).
    pub fn stats(&self) -> PeerSwapStats {
        let mut total = PeerSwapStats::default();
        for e in self.shards() {
            total.merge(&e.stats());
        }
        total
    }
}

impl ShardWorker for PeerSwapEngine {
    type Envelope = InFlight<BaselineMsg>;

    fn run_tick(&mut self, boundary: SimTime, out: &mut [Vec<InFlight<BaselineMsg>>]) {
        while let Some((_, ev)) = self.sim.step_before(boundary) {
            self.handle(ev);
        }
        self.sim.advance_to(boundary);
        self.shard.as_mut().expect("run_tick requires shard mode").drain_into(out);
    }

    fn absorb(&mut self, mut batch: Vec<InFlight<BaselineMsg>>) {
        sort_tick_batch(&mut batch);
        for f in batch {
            let at = f.arrive_at;
            self.sim.schedule_at(at, Ev::Deliver(self.flights.insert(f)));
        }
    }

    fn envelope_bytes(envelope: &InFlight<BaselineMsg>) -> u64 {
        envelope.wire_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nylon_net::NatType;

    fn engine_with(publics: usize, natted: usize, nat: NatType, seed: u64) -> PeerSwapEngine {
        let mut eng = PeerSwapEngine::new(PeerSwapConfig::default(), NetConfig::default(), seed);
        for _ in 0..publics {
            eng.add_peer(NatClass::Public);
        }
        for _ in 0..natted {
            eng.add_peer(NatClass::Natted(nat));
        }
        eng.bootstrap_random_public(8);
        eng.start();
        eng
    }

    #[test]
    fn all_public_swaps_complete() {
        let mut eng = engine_with(40, 0, NatType::PortRestrictedCone, 1);
        eng.run_rounds(30);
        let s = eng.stats();
        assert!(s.swaps_initiated > 0);
        assert!(s.responses_received > 0, "swaps must complete on an all-public fabric");
        assert_eq!(s.swaps_unanswered, 0, "no NATs, no lost responses, every swap answered");
        let mut total = 0usize;
        let alive: Vec<PeerId> = eng.alive_peers().collect();
        for p in &alive {
            let v = eng.view_of(*p);
            assert!(!v.is_empty(), "view of {p} drained");
            assert!(v.len() <= eng.config().view_size);
            total += v.len();
        }
        // Committed exchanges preserve view mass (fill-then-replace), so
        // views grow from the 8-entry bootstrap toward capacity.
        assert!(
            total >= alive.len() * 12,
            "views failed to fill: mean {:.1} of {}",
            total as f64 / alive.len() as f64,
            eng.config().view_size
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut eng = engine_with(20, 20, NatType::PortRestrictedCone, seed);
            eng.run_rounds(25);
            let mut ids: Vec<Vec<u32>> = Vec::new();
            for p in eng.alive_peers().collect::<Vec<_>>() {
                let mut v: Vec<u32> = eng.view_of(p).ids().iter().map(|q| q.0).collect();
                v.sort_unstable();
                ids.push(v);
            }
            (eng.stats(), ids)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn nat_drops_shed_entries_without_draining_views() {
        // PRC-heavy population: swap requests toward natted entries die at
        // NAT boxes. The shed target entry stays gone (failure detection),
        // but committed exchanges with reachable peers keep refilling the
        // views — nobody ends up empty.
        let mut eng = engine_with(8, 32, NatType::PortRestrictedCone, 7);
        eng.run_rounds(50);
        let s = eng.stats();
        assert!(s.swaps_unanswered > 0, "NAT drops must surface as unanswered swaps: {s:?}");
        assert!(s.responses_received < s.swaps_initiated, "some responses must be lost: {s:?}");
        let empty = eng
            .alive_peers()
            .collect::<Vec<_>>()
            .iter()
            .filter(|p| eng.view_of(**p).is_empty())
            .count();
        assert_eq!(empty, 0, "views must not drain empty under NAT loss");
    }

    #[test]
    fn dead_peers_stop_swapping() {
        let mut eng = engine_with(20, 0, NatType::PortRestrictedCone, 5);
        eng.run_rounds(5);
        let initiated_before = eng.stats().swaps_initiated;
        let all: Vec<PeerId> = eng.alive_peers().collect();
        eng.kill_peers(&all);
        eng.run_rounds(10);
        assert_eq!(eng.stats().swaps_initiated, initiated_before);
        assert_eq!(eng.alive_peers().count(), 0);
    }

    #[test]
    fn join_after_start_gets_integrated() {
        let mut eng = engine_with(20, 0, NatType::PortRestrictedCone, 9);
        eng.run_rounds(10);
        let seed_peer = eng.alive_peers().next().unwrap();
        let newbie = eng.add_peer_with_bootstrap(NatClass::Public, &[seed_peer]);
        eng.run_rounds(20);
        assert!(!eng.view_of(newbie).is_empty());
        let known: usize = eng
            .alive_peers()
            .collect::<Vec<_>>()
            .iter()
            .filter(|p| eng.view_of(**p).contains(newbie))
            .count();
        assert!(known > 0, "joining peer never spread");
    }

    #[test]
    fn sample_log_records_uniform_partner_choices() {
        let mut eng = engine_with(30, 0, NatType::PortRestrictedCone, 17);
        eng.enable_sample_log();
        eng.run_rounds(20);
        let log = eng.sample_log().expect("enabled");
        assert!(!log.is_empty());
        assert!(log.iter().all(|id| (*id as usize) < eng.net().peer_count()));
    }

    #[test]
    fn committed_swaps_replace_the_shipped_batch() {
        // Exchanged batches *replace* the copies each side shipped: views
        // never exceed capacity and entries that were no part of the
        // exchange are never evicted, so almost every swap commits on an
        // all-public fabric.
        let mut eng = engine_with(30, 0, NatType::PortRestrictedCone, 23);
        eng.run_rounds(40);
        for p in eng.alive_peers().collect::<Vec<_>>() {
            assert!(eng.view_of(p).len() <= eng.config().view_size);
        }
        let s = eng.stats();
        assert!(s.responses_received * 10 > s.swaps_initiated * 9, "all-public swaps must commit");
    }

    #[test]
    fn flight_slab_recycles_slots() {
        let mut eng = engine_with(30, 10, NatType::PortRestrictedCone, 33);
        eng.run_rounds(20);
        let high = eng.flights.slot_count();
        assert!(high > 0, "warm-up must have scheduled deliveries");
        eng.run_rounds(1_000);
        assert!(
            eng.flights.slot_count() <= high * 2 + 8,
            "flight slab grew from {high} to {} slots over 1k rounds",
            eng.flights.slot_count()
        );
    }

    #[test]
    #[should_panic(expected = "engine already started")]
    fn double_start_panics() {
        let mut eng = engine_with(5, 0, NatType::PortRestrictedCone, 1);
        eng.start();
    }

    #[test]
    fn shard_count_and_map_do_not_change_the_run() {
        use crate::sampler::PeerSampler;
        use crate::sharded::{Sharded, ShardedConfig};
        use nylon_sim::ShardAssign;

        let run = |shards: usize, assign| {
            let cfg = ShardedConfig { inner: PeerSwapConfig::default(), shards, assign };
            let mut eng = Sharded::<PeerSwapEngine>::with_seed(cfg, NetConfig::default(), 7);
            for i in 0..60u32 {
                let class = if i % 10 < 3 {
                    NatClass::Public
                } else {
                    NatClass::Natted(NatType::PortRestrictedCone)
                };
                eng.add_peer(class);
            }
            eng.bootstrap_random_public(8);
            eng.start();
            eng.run_rounds(8);
            let views: Vec<Vec<u32>> = (0..eng.peer_count() as u32)
                .map(|i| {
                    let mut ids: Vec<u32> = eng.view_of(PeerId(i)).iter().map(|d| d.id.0).collect();
                    ids.sort_unstable();
                    ids
                })
                .collect();
            (eng.stats(), views)
        };
        let reference = run(1, ShardAssign::RoundRobin);
        assert!(reference.0.swaps_initiated > 300, "run too small to be meaningful");
        for shards in [2usize, 4] {
            for assign in [ShardAssign::RoundRobin, ShardAssign::AllOnOne, ShardAssign::Random(3)] {
                assert_eq!(
                    run(shards, assign),
                    reference,
                    "sharded PeerSwap run diverged at shards={shards} assign={assign:?}"
                );
            }
        }
    }

    #[test]
    fn wire_tap_carries_baseline_msgs() {
        // PeerSwap reuses the baseline wire message, so the tap yields
        // codec-compatible datagrams.
        let mut eng = PeerSwapEngine::new(PeerSwapConfig::default(), NetConfig::default(), 3);
        for _ in 0..10 {
            eng.add_peer(NatClass::Public);
        }
        eng.bootstrap_random_public(4);
        eng.enable_wire_tap();
        eng.start();
        eng.run_rounds(2);
        let out = eng.take_outbound();
        assert!(!out.is_empty(), "swaps must emit datagrams onto the tap");
        assert!(out.iter().all(|o| matches!(
            o.payload,
            BaselineMsg::Request { .. } | BaselineMsg::Response { .. }
        )));
    }
}
