//! Multi-core sharded peer sampling: S engine instances in lockstep.
//!
//! [`Sharded<E>`] runs one full engine per shard under a
//! [`ShardedSim`] lockstep driver. Each worker engine holds the complete
//! population fabric (the address plan and liveness are cheap, pure
//! functions of the add order) but materializes protocol state — views,
//! timers, NAT sessions, RNG draws — only for the nodes its shard owns;
//! every datagram crosses a tick barrier and is merged in canonical order
//! (see [`crate::engine::sort_tick_batch`]). Because each node draws from
//! its own forked RNG stream and the merge key is a pure function of the
//! logical message stream, the observable output of a sharded run is
//! byte-identical for *every* shard count and node→shard map.
//!
//! `Sharded<E>` implements [`PeerSampler`] itself, so the experiment
//! harness and metric extractors drive it exactly like a single engine:
//! `build(&scenario, ShardedConfig::new(cfg, 4))` is the sharded sibling
//! of `build(&scenario, cfg)`.
//!
//! Note the single-threaded engine path is *not* the S=1 case of this
//! driver: tie-breaks at shared instants differ (barrier-merged arrivals
//! versus interleaved direct scheduling), so the direct path remains its
//! own reference, while sharded runs agree with each other at any S.

use nylon_net::{NatClass, NetConfig, PeerId, TrafficStats};
use nylon_sim::{ShardAssign, ShardPlan, ShardWorker, ShardedSim, SimDuration, SimTime};

use crate::descriptor::NodeDescriptor;
use crate::engine::BaselineEngine;
use crate::sampler::{PeerSampler, SamplerConfig};
use crate::view::PartialView;

/// An engine that can act as one worker of a sharded run.
///
/// Implementors are complete [`PeerSampler`] engines plus the shard-mode
/// hooks: joining a plan, exposing the network config (for the lockstep
/// tick), and — when entry usability spans two shards' NAT state — a
/// cross-shard variant of `edge_usable`.
pub trait ShardSampler: PeerSampler + ShardWorker {
    /// Turns a fresh engine into worker `idx` of `plan`. Must be called
    /// before any peer is added.
    fn set_shard(&mut self, plan: ShardPlan, idx: usize);

    /// The network fabric configuration (identical on every shard).
    fn net_config(&self) -> &NetConfig;

    /// [`PeerSampler::edge_usable`] evaluated against the shards owning
    /// each side's authoritative NAT state. The default delegates to the
    /// holder's shard, which is correct for engines whose usability oracle
    /// only reads holder-local protocol state plus globally replicated
    /// facts (liveness, classes).
    fn edge_usable_sharded(
        holder_shard: &Self,
        _target_shard: &Self,
        holder: PeerId,
        d: &NodeDescriptor,
    ) -> bool {
        holder_shard.edge_usable(holder, d)
    }
}

/// The lockstep tick: the minimum latency any datagram can experience
/// under `cfg`, which is the conservative lookahead — a message sent
/// inside a tick always arrives after the tick's barrier.
///
/// # Panics
///
/// Panics on a zero-minimum-latency config (the lookahead argument needs
/// every send to take at least one virtual millisecond).
pub fn lockstep_tick(cfg: &NetConfig) -> SimDuration {
    let base = cfg.latency.as_millis();
    let jitter = cfg.latency_jitter.as_millis();
    // Mirrors Network::send: jitter-free sends take exactly `base`;
    // jittered ones are clamped below at 1 ms.
    let min = if jitter == 0 { base } else { base.saturating_sub(jitter).max(1) };
    assert!(min >= 1, "sharded runs need a minimum network latency of at least 1 ms");
    SimDuration::from_millis(min)
}

/// Configuration for a sharded run: the inner engine's config plus the
/// shard plan. Building with this config yields [`Sharded<E>`] from the
/// same generic `build` path that yields `E` for the inner config.
#[derive(Debug, Clone)]
pub struct ShardedConfig<C> {
    /// The wrapped engine configuration.
    pub inner: C,
    /// Number of worker shards (must be at least 1).
    pub shards: usize,
    /// Node→shard assignment rule.
    pub assign: ShardAssign,
}

impl<C> ShardedConfig<C> {
    /// A round-robin sharded config over `shards` workers.
    pub fn new(inner: C, shards: usize) -> Self {
        ShardedConfig { inner, shards, assign: ShardAssign::RoundRobin }
    }
}

impl<C: SamplerConfig> SamplerConfig for ShardedConfig<C>
where
    C::Sampler: ShardSampler,
{
    type Sampler = Sharded<C::Sampler>;

    fn set_view_size(&mut self, view_size: usize) {
        self.inner.set_view_size(view_size);
    }

    fn align_to_net(&mut self, net_cfg: &NetConfig) {
        self.inner.align_to_net(net_cfg);
    }
}

/// S shard-worker engines advanced in lockstep ticks; see the module docs.
#[derive(Debug)]
pub struct Sharded<E: ShardSampler> {
    sim: ShardedSim<E>,
    plan: ShardPlan,
}

impl<E: ShardSampler> Sharded<E> {
    /// The per-shard worker engines, in shard order.
    pub fn shards(&self) -> &[E] {
        self.sim.workers()
    }

    /// The worker engine owning `peer`'s protocol state.
    pub fn shard_of(&self, peer: PeerId) -> &E {
        &self.sim.workers()[self.plan.shard_of(peer.0)]
    }

    /// Applies `f` to every worker engine (population setup and other
    /// between-run mutations that must reach all replicas of the fabric).
    pub fn for_each_shard(&mut self, mut f: impl FnMut(&mut E)) {
        for w in self.sim.workers_mut() {
            f(w);
        }
    }
}

impl Sharded<BaselineEngine> {
    /// Sharded counterpart of
    /// [`BaselineEngine::bootstrap_random_public_sparse`]: each worker
    /// fills the views of its owned nodes in O(per_view) per node.
    pub fn bootstrap_random_public_sparse(&mut self, per_view: usize) {
        self.for_each_shard(|e| e.bootstrap_random_public_sparse(per_view));
    }

    /// Run-wide protocol counters: the per-shard counters summed (each
    /// protocol event is counted on exactly one shard).
    pub fn stats(&self) -> crate::engine::ShuffleStats {
        let mut total = crate::engine::ShuffleStats::default();
        for e in self.shards() {
            total.merge(&e.stats());
        }
        total
    }

    /// Total events processed across all shard event loops.
    pub fn events_processed(&self) -> u64 {
        self.shards().iter().map(|e| e.events_processed()).sum()
    }
}

impl<E: ShardSampler> PeerSampler for Sharded<E> {
    type Config = ShardedConfig<E::Config>;

    fn with_seed(cfg: Self::Config, net_cfg: NetConfig, seed: u64) -> Self {
        let plan = ShardPlan::new(cfg.shards, cfg.assign);
        let workers: Vec<E> = (0..plan.shards())
            .map(|idx| {
                // Every worker gets the same seed: per-node streams are
                // pure in (seed, node id), so replicas agree by
                // construction, and each node's stream is only ever
                // *advanced* on its owner shard.
                let mut e = E::with_seed(cfg.inner.clone(), net_cfg.clone(), seed);
                e.set_shard(plan, idx);
                e
            })
            .collect();
        let tick = lockstep_tick(workers[0].net_config());
        Sharded { sim: ShardedSim::new(workers, tick), plan }
    }

    fn add_peer(&mut self, class: NatClass) -> PeerId {
        let mut id = None;
        self.for_each_shard(|e| {
            let got = e.add_peer(class);
            assert!(id.is_none_or(|prev| prev == got), "shards disagree on peer ids");
            id = Some(got);
        });
        id.expect("at least one shard")
    }

    fn enable_port_forwarding(&mut self, peer: PeerId) {
        self.for_each_shard(|e| e.enable_port_forwarding(peer));
    }

    fn install_fault_plan(&mut self, plan: nylon_faults::FaultPlan) {
        // Every worker replica gets the identical plan and applies every
        // event to its own network replica; the runtime's ownership-based
        // stat counting keeps absorbed totals equal to single-engine runs.
        self.for_each_shard(|e| e.install_fault_plan(plan.clone()));
    }

    fn fault_stats(&self) -> nylon_faults::FaultStats {
        let mut total = nylon_faults::FaultStats::default();
        for w in self.sim.workers() {
            total.merge(&w.fault_stats());
        }
        total
    }

    fn bootstrap_random_public(&mut self, per_view: usize) {
        self.for_each_shard(|e| e.bootstrap_random_public(per_view));
    }

    fn start(&mut self) {
        self.for_each_shard(|e| e.start());
    }

    fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.sim.now() + dur;
        self.sim.run_until(deadline);
    }

    fn run_rounds(&mut self, n: u64) {
        self.run_for(self.shuffle_period() * n);
    }

    fn kill_peers(&mut self, peers: &[PeerId]) {
        self.for_each_shard(|e| e.kill_peers(peers));
    }

    fn now(&self) -> SimTime {
        self.sim.now()
    }

    fn shuffle_period(&self) -> SimDuration {
        self.sim.workers()[0].shuffle_period()
    }

    fn peer_count(&self) -> usize {
        self.sim.workers()[0].peer_count()
    }

    fn is_alive(&self, peer: PeerId) -> bool {
        self.sim.workers()[0].is_alive(peer)
    }

    fn class_of(&self, peer: PeerId) -> NatClass {
        self.sim.workers()[0].class_of(peer)
    }

    fn traffic_of(&self, peer: PeerId) -> TrafficStats {
        // Traffic is accounted where the sending/receiving node lives.
        self.shard_of(peer).traffic_of(peer)
    }

    fn alive_peers(&self) -> Vec<PeerId> {
        self.sim.workers()[0].alive_peers()
    }

    fn view_of(&self, peer: PeerId) -> &PartialView {
        self.shard_of(peer).view_of(peer)
    }

    fn view_of_mut(&mut self, peer: PeerId) -> &mut PartialView {
        // Only the owner shard materializes (and reads) this node's view,
        // so rewriting the authoritative copy is a complete rewrite.
        let idx = self.plan.shard_of(peer.0);
        self.sim.workers_mut()[idx].view_of_mut(peer)
    }

    fn descriptor_of(&self, peer: PeerId) -> NodeDescriptor {
        // The address plan is replicated on every shard; ask the owner for
        // symmetry with view access.
        self.shard_of(peer).descriptor_of(peer)
    }

    fn edge_usable(&self, holder: PeerId, d: &NodeDescriptor) -> bool {
        if d.id.index() >= self.peer_count() {
            return false;
        }
        E::edge_usable_sharded(self.shard_of(holder), self.shard_of(d.id), holder, d)
    }

    /// Merges every worker's report (counters sum, gauges max, histograms
    /// merge exactly — all commutative, so the result is independent of
    /// shard count and iteration order), plus the driver's exchange/stall
    /// telemetry and a per-lane event breakdown for imbalance analysis.
    fn obs_report(&self, out: &mut nylon_obs::Report) {
        self.sim.obs_report(out);
        for (i, worker) in self.shards().iter().enumerate() {
            let mut lane = nylon_obs::Report::new();
            worker.obs_report(&mut lane);
            if let Some(nylon_obs::MetricValue::Counter(events)) =
                lane.get("kernel", "events_processed")
            {
                out.counter("shard", &format!("lane{i}_events"), *events);
            }
            out.absorb(&lane);
        }
    }
}

impl ShardSampler for BaselineEngine {
    fn set_shard(&mut self, plan: ShardPlan, idx: usize) {
        BaselineEngine::set_shard(self, plan, idx);
    }

    fn net_config(&self) -> &NetConfig {
        self.net().config()
    }

    /// The baseline's oracle is raw packet-level reachability, which spans
    /// both ends' NAT state: egress translation is previewed on the
    /// holder's shard, ingress filtering on the target's — each against
    /// the authoritative copy.
    fn edge_usable_sharded(
        holder_shard: &Self,
        target_shard: &Self,
        holder: PeerId,
        d: &NodeDescriptor,
    ) -> bool {
        if d.id.index() >= holder_shard.net().peer_count() || !holder_shard.net().is_alive(d.id) {
            return false;
        }
        let now = holder_shard.now();
        match holder_shard.net().egress_src_preview(now, holder, d.addr) {
            None => false,
            Some(src_ep) => target_shard.net().ingress_would_admit(now, d.id, d.addr, src_ep),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::GossipConfig;
    use nylon_net::NatType;

    fn population(eng: &mut impl PeerSampler, n: u32) {
        for i in 0..n {
            let class = if i % 10 < 3 {
                NatClass::Public
            } else {
                NatClass::Natted(NatType::PortRestrictedCone)
            };
            eng.add_peer(class);
        }
    }

    fn fingerprint(eng: &Sharded<BaselineEngine>) -> (crate::engine::ShuffleStats, Vec<Vec<u32>>) {
        let views = (0..eng.peer_count() as u32)
            .map(|i| {
                let mut ids: Vec<u32> = eng.view_of(PeerId(i)).iter().map(|d| d.id.0).collect();
                ids.sort_unstable();
                ids
            })
            .collect();
        (eng.stats(), views)
    }

    fn run_sharded(shards: usize, assign: ShardAssign, seed: u64) -> Sharded<BaselineEngine> {
        let cfg = ShardedConfig { inner: GossipConfig::default(), shards, assign };
        let mut eng = Sharded::<BaselineEngine>::with_seed(cfg, NetConfig::default(), seed);
        population(&mut eng, 60);
        eng.bootstrap_random_public(8);
        eng.start();
        eng.run_rounds(8);
        eng
    }

    #[test]
    fn shard_count_and_map_do_not_change_the_run() {
        let reference = fingerprint(&run_sharded(1, ShardAssign::RoundRobin, 7));
        assert!(reference.0.initiated > 300, "run too small to be meaningful");
        for shards in [2usize, 4] {
            for assign in [ShardAssign::RoundRobin, ShardAssign::AllOnOne, ShardAssign::Random(3)] {
                let got = fingerprint(&run_sharded(shards, assign, 7));
                assert_eq!(
                    got, reference,
                    "sharded run diverged at shards={shards} assign={assign:?}"
                );
            }
        }
    }

    #[test]
    fn tiny_tick_barrier_stress_pins_the_merge_order() {
        // 1 ms lockstep ticks (latency 2 ms ± 1 ms jitter) against a
        // 200 ms shuffle period: thousands of barrier crossings, every
        // flight arriving within a tick or two of its send — the densest
        // cross-shard interleaving the driver can see, with the jittered
        // per-peer RNG path active. Every adversarial shard map must
        // still reproduce the S=1 run exactly, pinning the canonical
        // (arrival, sender) merge order.
        let net = NetConfig {
            latency: SimDuration::from_millis(2),
            latency_jitter: SimDuration::from_millis(1),
            ..NetConfig::default()
        };
        let cfg = GossipConfig {
            shuffle_period: SimDuration::from_millis(200),
            ..GossipConfig::default()
        };
        let run = |shards, assign| {
            let mut eng = Sharded::<BaselineEngine>::with_seed(
                ShardedConfig { inner: cfg.clone(), shards, assign },
                net.clone(),
                17,
            );
            population(&mut eng, 40);
            eng.bootstrap_random_public(8);
            eng.start();
            eng.run_rounds(25);
            fingerprint(&eng)
        };
        let reference = run(1, ShardAssign::RoundRobin);
        assert!(reference.0.initiated > 700, "stress run too small to be meaningful");
        for assign in [ShardAssign::AllOnOne, ShardAssign::RoundRobin, ShardAssign::Random(9)] {
            assert_eq!(run(5, assign), reference, "tiny-tick run diverged under {assign:?}");
        }
    }

    #[test]
    fn seed_reaches_a_sharded_run() {
        let a = fingerprint(&run_sharded(2, ShardAssign::RoundRobin, 1));
        let b = fingerprint(&run_sharded(2, ShardAssign::RoundRobin, 2));
        assert_ne!(a, b, "different seeds produced identical sharded runs");
    }

    #[test]
    fn kills_and_usability_oracle_work_sharded() {
        let mut eng = run_sharded(3, ShardAssign::RoundRobin, 11);
        let victims: Vec<PeerId> = (0..10).map(PeerId).collect();
        eng.kill_peers(&victims);
        assert_eq!(eng.alive_peers().len(), 50);
        eng.run_rounds(2);
        // Edges toward dead peers are unusable regardless of which shards
        // the endpoints live on.
        for holder in eng.alive_peers() {
            for d in eng.view_of(holder).iter() {
                if victims.contains(&d.id) {
                    assert!(!eng.edge_usable(holder, d), "dead target reported usable");
                }
            }
        }
        // And the composed cross-shard oracle agrees with a single-shard
        // run of the same scenario for every (holder, entry) pair.
        let mut single = run_sharded(1, ShardAssign::RoundRobin, 11);
        single.kill_peers(&victims);
        single.run_rounds(2);
        for holder in single.alive_peers() {
            let usable: Vec<bool> =
                single.view_of(holder).iter().map(|d| single.edge_usable(holder, d)).collect();
            let usable_sharded: Vec<bool> =
                eng.view_of(holder).iter().map(|d| eng.edge_usable(holder, d)).collect();
            assert_eq!(usable, usable_sharded, "oracle diverged for holder {holder:?}");
        }
    }
}
