//! The three policy axes of the generic protocol, and its configuration.

use std::fmt;

use nylon_sim::SimDuration;

/// How the gossip target is selected from the view (Section 3 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectionPolicy {
    /// Uniformly random view entry.
    #[default]
    Rand,
    /// The entry with the highest age.
    Tail,
}

impl SelectionPolicy {
    /// The label used in the paper's plots ("rand" / "tail").
    pub const fn label(self) -> &'static str {
        match self {
            SelectionPolicy::Rand => "rand",
            SelectionPolicy::Tail => "tail",
        }
    }
}

/// How views propagate during a shuffle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PropagationPolicy {
    /// Only the initiator ships its view.
    Push,
    /// Initiator and target exchange views (the paper's default: push mode
    /// "consistently exhibits significantly worse performances").
    #[default]
    PushPull,
}

impl PropagationPolicy {
    /// The label used in the paper's plots ("push" / "push/pull").
    pub const fn label(self) -> &'static str {
        match self {
            PropagationPolicy::Push => "push",
            PropagationPolicy::PushPull => "push/pull",
        }
    }
}

/// How a merged view is truncated back to capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MergePolicy {
    /// Drop uniformly random entries.
    Blind,
    /// Keep the youngest entries (drop the oldest first).
    #[default]
    Healer,
    /// Drop the entries that were just sent to the partner first.
    Swapper,
}

impl MergePolicy {
    /// The label used in the paper's plots ("blind" / "healer" /
    /// "swapper").
    pub const fn label(self) -> &'static str {
        match self {
            MergePolicy::Blind => "blind",
            MergePolicy::Healer => "healer",
            MergePolicy::Swapper => "swapper",
        }
    }
}

/// Configuration of the generic peer-sampling protocol.
///
/// Defaults follow the paper's experimental setup: view size 15, shuffle
/// period 5 s, (push/pull, rand, healer).
#[derive(Debug, Clone)]
pub struct GossipConfig {
    /// Maximum number of view entries (paper: 15 or 27).
    pub view_size: usize,
    /// Interval between two shuffles initiated by a peer (paper: 5 s).
    pub shuffle_period: SimDuration,
    /// Gossip target selection policy.
    pub selection: SelectionPolicy,
    /// View propagation policy.
    pub propagation: PropagationPolicy,
    /// View merging policy.
    pub merge: MergePolicy,
    /// Wire-size model: bytes per view entry shipped (id + endpoint + NAT
    /// class + age).
    pub entry_bytes: u32,
    /// Wire-size model: fixed per-message protocol header bytes.
    pub msg_header_bytes: u32,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            view_size: 15,
            shuffle_period: SimDuration::from_secs(5),
            selection: SelectionPolicy::Rand,
            propagation: PropagationPolicy::PushPull,
            merge: MergePolicy::Healer,
            entry_bytes: 14,
            msg_header_bytes: 8,
        }
    }
}

impl GossipConfig {
    /// Config labelled as in the paper's legends, e.g.
    /// `push/pull,rand,healer`.
    pub fn label(&self) -> String {
        format!("{},{},{}", self.propagation.label(), self.selection.label(), self.merge.label())
    }

    /// The six push/pull configurations evaluated in Section 3 of the
    /// paper, in legend order.
    pub fn paper_configurations(view_size: usize) -> Vec<GossipConfig> {
        let mut out = Vec::new();
        for selection in [SelectionPolicy::Rand, SelectionPolicy::Tail] {
            for merge in [MergePolicy::Healer, MergePolicy::Blind, MergePolicy::Swapper] {
                out.push(GossipConfig { view_size, selection, merge, ..GossipConfig::default() });
            }
        }
        out
    }

    /// Bytes on the wire for a message shipping `entries` descriptors.
    pub fn message_bytes(&self, entries: usize) -> u32 {
        self.msg_header_bytes + self.entry_bytes * entries as u32
    }
}

impl fmt::Display for GossipConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (view={})", self.label(), self.view_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = GossipConfig::default();
        assert_eq!(c.view_size, 15);
        assert_eq!(c.shuffle_period, SimDuration::from_secs(5));
        assert_eq!(c.label(), "push/pull,rand,healer");
    }

    #[test]
    fn six_paper_configurations() {
        let cfgs = GossipConfig::paper_configurations(27);
        assert_eq!(cfgs.len(), 6);
        let labels: Vec<String> = cfgs.iter().map(|c| c.label()).collect();
        assert!(labels.contains(&"push/pull,rand,healer".to_string()));
        assert!(labels.contains(&"push/pull,tail,swapper".to_string()));
        assert!(cfgs.iter().all(|c| c.view_size == 27));
        // All distinct.
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 6);
    }

    #[test]
    fn message_bytes_model() {
        let c = GossipConfig::default();
        assert_eq!(c.message_bytes(0), 8);
        assert_eq!(c.message_bytes(16), 8 + 16 * 14);
    }

    #[test]
    fn display_includes_view_size() {
        let c = GossipConfig { view_size: 27, ..GossipConfig::default() };
        assert_eq!(c.to_string(), "push/pull,rand,healer (view=27)");
    }
}
