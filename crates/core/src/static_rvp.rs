//! The "static public RVP" strawman of Section 4, as an ablation baseline.
//!
//! The paper considers — and rejects — the straightforward fix for NATs:
//! bind every natted peer to one *public* rendez-vous peer that relays all
//! its shuffles. The scheme works, but (i) "the extra load induced by the
//! presence of NATs is supported by the public peers", and (ii) a public
//! peer's failure invalidates every reference to the natted peers bound to
//! it.
//!
//! This module implements that scheme so the load-distribution claim can be
//! measured (ablation `abl-rvp` in DESIGN.md): compare
//! [`nylon_net::Network::stats_of`] by NAT class against Nylon's Figure 8.
//!
//! Design notes: descriptors travel annotated with the peer's current RVP;
//! natted peers refresh their hole to their RVP with a PING every shuffle
//! period (proactive keep-alive, unlike Nylon's reactive punching) and
//! re-bind to a fresh public peer if their RVP dies.

use nylon_faults::{FaultPlan, FaultRuntime, FaultStats};
use nylon_gossip::{sort_tick_batch, GossipConfig, NodeDescriptor, PartialView, ShardCtx};
use nylon_net::{
    BufferPool, Delivery, DenseMap, Endpoint, InFlight, NatClass, NetConfig, Network, PeerId, Slab,
    SlabKey,
};
use nylon_sim::{FxHashSet, ShardPlan, ShardWorker, Sim, SimDuration, SimRng, SimTime};

/// A descriptor annotated with the peer's RVP binding (`None` for public
/// peers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundDescriptor {
    /// The peer descriptor.
    pub descriptor: NodeDescriptor,
    /// The public peer relaying for it, if natted.
    pub rvp: Option<PeerId>,
}

/// Wire messages of the static-RVP scheme.
#[derive(Debug, Clone)]
pub enum StaticRvpMsg {
    /// A shuffle request, possibly relayed by the target's RVP.
    Request {
        /// Initiator (with its RVP, so the response can be routed back).
        src: BoundDescriptor,
        /// Final destination.
        dest: PeerId,
        /// Shipped view.
        entries: Vec<BoundDescriptor>,
    },
    /// A shuffle response, possibly relayed by the initiator's RVP.
    Response {
        /// Responder.
        from: PeerId,
        /// Final destination (the initiator).
        dest: PeerId,
        /// Shipped view.
        entries: Vec<BoundDescriptor>,
    },
    /// Keep-alive from a natted peer to its RVP.
    Ping {
        /// The natted client.
        from: PeerId,
    },
}

/// Counters for the static-RVP scheme.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticRvpStats {
    /// Shuffle rounds with a selected target.
    pub shuffles_initiated: u64,
    /// Rounds skipped for lack of view entries.
    pub empty_view_rounds: u64,
    /// Messages relayed by public RVPs.
    pub relays: u64,
    /// Relay attempts towards unknown/dead clients.
    pub relay_failures: u64,
    /// Keep-alive PINGs sent.
    pub pings_sent: u64,
    /// REQUESTs that reached their destination.
    pub requests_completed: u64,
    /// RESPONSEs that reached the initiator.
    pub responses_completed: u64,
    /// Natted peers that re-bound after their RVP died.
    pub rebinds: u64,
    /// Hardened mode: proactive re-binds after repeated relay silence,
    /// before the TTL ever declares the RVP dead.
    pub failovers: u64,
}

impl StaticRvpStats {
    /// Adds another counter set into this one. In a sharded run every
    /// protocol event is counted on exactly one shard (the one owning the
    /// acting node), so summing per-shard counters reproduces the
    /// single-engine totals.
    pub fn merge(&mut self, other: &StaticRvpStats) {
        self.shuffles_initiated += other.shuffles_initiated;
        self.empty_view_rounds += other.empty_view_rounds;
        self.relays += other.relays;
        self.relay_failures += other.relay_failures;
        self.pings_sent += other.pings_sent;
        self.requests_completed += other.requests_completed;
        self.responses_completed += other.responses_completed;
        self.rebinds += other.rebinds;
        self.failovers += other.failovers;
    }
}

#[derive(Debug)]
struct Node {
    view: PartialView,
    /// RVP binding for natted peers.
    rvp: Option<PeerId>,
    /// For public peers: observed endpoints of natted clients bound to us.
    clients: DenseMap<PeerId, Endpoint>,
    pending_sent: DenseMap<PeerId, Vec<PeerId>>,
    rng: SimRng,
    /// RVP annotations learned alongside view entries.
    bindings: DenseMap<PeerId, Option<PeerId>>,
    /// Hardened mode: shuffle rounds since the last RESPONSE made it back.
    silent_rounds: u8,
}

/// Engine events. `Deliver` carries a slab handle — the ~100 B
/// [`InFlight`] datagram parks in the engine's flight slab while the
/// 4-byte key travels through the timer wheel.
#[derive(Debug)]
enum Ev {
    Shuffle(PeerId),
    Deliver(SlabKey),
    Purge,
    /// The next fault-plan event is due (see [`FaultRuntime::next_at`]).
    Fault,
}

// The whole point of the slab indirection: wheeled events stay slim.
const _: () = assert!(std::mem::size_of::<Ev>() <= 32, "Ev must stay slim for the timer wheel");

const PURGE_EVERY: SimDuration = SimDuration::from_secs(60);

/// Hardened mode: after this many consecutive shuffle rounds with no
/// RESPONSE arriving, a natted peer assumes its relay path is dead (stale
/// hole, silently crashed RVP) and re-registers with a different RVP.
const FAILOVER_SILENT_ROUNDS: u8 = 3;

/// Engine for the static-RVP strawman. API mirrors
/// [`nylon::NylonEngine`](crate::NylonEngine).
#[derive(Debug)]
pub struct StaticRvpEngine {
    sim: Sim<Ev>,
    net: Network<StaticRvpMsg>,
    cfg: GossipConfig,
    nodes: Vec<Node>,
    stats: StaticRvpStats,
    started: bool,
    /// Recycled wire-view buffers (see `nylon_net::pool`): steady-state
    /// shuffling allocates nothing.
    entry_pool: BufferPool<BoundDescriptor>,
    /// Recycled id buffers for the shipped-id lists.
    id_pool: BufferPool<PeerId>,
    /// Reused scratch for the descriptor projection of a merge.
    scratch_descs: Vec<NodeDescriptor>,
    /// Reused scratch for the binding-cache keep set (merge truncation).
    scratch_keep: FxHashSet<PeerId>,
    /// In-flight datagrams, parked here while their 4-byte handle travels
    /// through the timer wheel (see [`Ev`]); slots recycle.
    flights: Slab<InFlight<StaticRvpMsg>>,
    /// `Some` when this engine is one worker of a sharded run (see
    /// `nylon_gossip::sharded`).
    shard: Option<ShardCtx<StaticRvpMsg>>,
    /// Installed fault plan, if any (see [`install_fault_plan`]).
    ///
    /// [`install_fault_plan`]: StaticRvpEngine::install_fault_plan
    faults: Option<FaultRuntime>,
    /// Graceful-degradation mode from the fault plan: silence-based RVP
    /// failover instead of waiting for TTL death.
    harden: bool,
}

impl StaticRvpEngine {
    /// Creates an engine with the generic protocol configuration (the
    /// strawman uses plain (push/pull, rand, healer) shuffles).
    pub fn new(cfg: GossipConfig, net_cfg: NetConfig, seed: u64) -> Self {
        let sim = Sim::new(seed);
        let net = Network::new(net_cfg, seed ^ 0x4E59_4C4F_4E00_0003);
        StaticRvpEngine {
            sim,
            net,
            cfg,
            nodes: Vec::new(),
            stats: StaticRvpStats::default(),
            started: false,
            entry_pool: BufferPool::new(),
            id_pool: BufferPool::new(),
            scratch_descs: Vec::new(),
            scratch_keep: FxHashSet::default(),
            flights: Slab::new(),
            shard: None,
            faults: None,
            harden: false,
        }
    }

    /// Installs a compiled [`FaultPlan`]: applies its topology mutations
    /// (stacked CGN, hairpin toggles) immediately and schedules its timed
    /// events. Call after the population is added and before
    /// [`bootstrap_random_public`](Self::bootstrap_random_public), so
    /// descriptors advertise post-CGN identities.
    ///
    /// # Panics
    ///
    /// Panics if the engine has started or a plan is already installed.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        assert!(!self.started, "install the fault plan before start()");
        assert!(self.faults.is_none(), "fault plan already installed");
        self.harden = plan.harden;
        plan.apply_topology(&mut self.net);
        let count_global = self.shard.as_ref().is_none_or(|s| s.idx == 0);
        let rt = FaultRuntime::new(plan, count_global);
        if let Some(at) = rt.next_at() {
            self.sim.schedule_at(at, Ev::Fault);
        }
        self.faults = Some(rt);
    }

    /// Fault counters (all zero when no plan is installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats()).unwrap_or_default()
    }

    /// Turns this engine into worker `idx` of a sharded run (see
    /// `nylon_gossip::sharded`). Must be called on a fresh engine, before
    /// any peer is added.
    ///
    /// # Panics
    ///
    /// Panics if the engine has already been populated or started.
    pub fn set_shard(&mut self, plan: ShardPlan, idx: usize) {
        assert!(!self.started && self.nodes.is_empty(), "set_shard requires a fresh engine");
        self.shard = Some(ShardCtx::new(plan, idx));
    }

    /// Whether this engine materializes protocol state for `peer` — always
    /// true outside shard mode.
    fn owns(&self, peer: PeerId) -> bool {
        self.shard.as_ref().is_none_or(|s| s.owns(peer))
    }

    /// Total events processed by the local event loop.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The protocol configuration.
    pub fn config(&self) -> &GossipConfig {
        &self.cfg
    }

    /// The underlying network.
    pub fn net(&self) -> &Network<StaticRvpMsg> {
        &self.net
    }

    /// Protocol counters.
    pub fn stats(&self) -> StaticRvpStats {
        self.stats
    }

    /// Reports kernel, net, and engine-layer telemetry into `out`.
    /// Read-only: see `PeerSampler::obs_report`'s contract.
    pub fn obs_report(&self, out: &mut nylon_obs::Report) {
        self.sim.obs_report(out);
        self.net.obs_report(out);
        self.entry_pool.obs_report(out);
        self.id_pool.obs_report(out);
        let s = &self.stats;
        out.counter("engine.static_rvp", "shuffles_initiated", s.shuffles_initiated);
        out.counter("engine.static_rvp", "empty_view_rounds", s.empty_view_rounds);
        out.counter("engine.static_rvp", "rvp_relays", s.relays);
        out.counter("engine.static_rvp", "rvp_relay_failures", s.relay_failures);
        out.counter("engine.static_rvp", "pings_sent", s.pings_sent);
        out.counter("engine.static_rvp", "requests_completed", s.requests_completed);
        out.counter("engine.static_rvp", "responses_completed", s.responses_completed);
        out.counter("engine.static_rvp", "rebinds", s.rebinds);
        out.counter("engine.static_rvp", "rvp_failovers", s.failovers);
        if let Some(f) = &self.faults {
            f.obs_report(out);
        }
    }

    /// Adds a peer. Natted peers are bound to a uniformly random public RVP
    /// when the engine starts.
    pub fn add_peer(&mut self, class: NatClass) -> PeerId {
        let id = self.net.add_peer(class);
        let rng = self.sim.rng().fork(0x5374_5276_0000_0000 | id.0 as u64);
        self.nodes.push(Node {
            view: PartialView::new(id, self.cfg.view_size),
            rvp: None,
            clients: DenseMap::new(),
            pending_sent: DenseMap::new(),
            rng,
            bindings: DenseMap::new(),
            silent_rounds: 0,
        });
        id
    }

    /// Enables a permanent UPnP/NAT-PMP port forwarding for a natted peer
    /// (no-op for public peers). Call before bootstrapping so descriptors
    /// advertise the forwarded endpoint.
    pub fn enable_port_forwarding(&mut self, peer: PeerId) {
        let _ = self.net.enable_port_forwarding(peer);
    }

    /// Whether `holder` could shuffle over this view entry right now: the
    /// target is alive and either public or relayable through an RVP the
    /// holder knows about (and which is itself still alive).
    pub fn edge_usable(&self, holder: PeerId, d: &NodeDescriptor) -> bool {
        if d.id.index() >= self.net.peer_count() || !self.net.is_alive(d.id) {
            return false;
        }
        if d.class.is_public() {
            return true;
        }
        match self.nodes[holder.index()].bindings.get(&d.id) {
            Some(Some(rvp)) => self.net.is_alive(*rvp),
            _ => false,
        }
    }

    /// Fills views with random public peers, as in the paper's bootstrap.
    pub fn bootstrap_random_public(&mut self, per_view: usize) {
        let publics: Vec<PeerId> =
            self.net.alive_peers().filter(|p| self.net.class_of(*p).is_public()).collect();
        assert!(!publics.is_empty(), "the static-RVP scheme requires at least one public peer");
        let all: Vec<PeerId> = self.net.alive_peers().collect();
        for p in all {
            // Shard mode: other shards fill this node's view (from the
            // same per-node stream); no global state is touched here.
            if !self.owns(p) {
                continue;
            }
            let candidates: Vec<PeerId> = publics.iter().copied().filter(|q| *q != p).collect();
            let chosen = {
                let node = &mut self.nodes[p.index()];
                node.rng.sample_without_replacement(&candidates, per_view)
            };
            for q in chosen {
                let d = NodeDescriptor::new(q, self.net.identity_endpoint(q), self.net.class_of(q));
                let node = &mut self.nodes[p.index()];
                node.view.insert(d);
                node.bindings.insert(q, None);
            }
        }
    }

    /// Binds natted peers to RVPs and schedules shuffles.
    ///
    /// # Panics
    ///
    /// Panics if called twice or if no public peer exists.
    pub fn start(&mut self) {
        assert!(!self.started, "engine already started");
        self.started = true;
        let publics: Vec<PeerId> =
            self.net.alive_peers().filter(|p| self.net.class_of(*p).is_public()).collect();
        assert!(!publics.is_empty(), "no public peers to act as RVPs");
        let all: Vec<PeerId> = self.net.alive_peers().collect();
        let period = self.cfg.shuffle_period.as_millis();
        for p in all {
            // In shard mode only owned nodes bind RVPs and get timers;
            // both draws come from the node's own forked stream, so
            // skipping them cannot shift any other node's draws.
            if !self.owns(p) {
                continue;
            }
            if self.net.class_of(p).is_natted() {
                let rvp = {
                    let node = &mut self.nodes[p.index()];
                    *node.rng.pick(&publics).expect("publics non-empty")
                };
                self.nodes[p.index()].rvp = Some(rvp);
            }
            let phase = {
                let node = &mut self.nodes[p.index()];
                SimDuration::from_millis(node.rng.gen_range(0..period))
            };
            self.sim.schedule_after(phase, Ev::Shuffle(p));
        }
        self.sim.schedule_after(PURGE_EVERY, Ev::Purge);
    }

    /// Runs for `dur` of virtual time.
    pub fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.sim.now() + dur;
        while let Some((_, ev)) = self.sim.step_before(deadline) {
            self.handle(ev);
        }
        self.sim.advance_to(deadline);
    }

    /// Runs for `n` shuffle periods.
    pub fn run_rounds(&mut self, n: u64) {
        self.run_for(self.cfg.shuffle_period * n);
    }

    /// Kills peers (fail-stop).
    pub fn kill_peers(&mut self, peers: &[PeerId]) {
        for p in peers {
            self.net.kill_peer(*p);
        }
    }

    /// The view of a peer.
    pub fn view_of(&self, peer: PeerId) -> &PartialView {
        &self.nodes[peer.index()].view
    }

    /// Mutable view access (the adversary seam; see
    /// [`nylon_gossip::PeerSampler::view_of_mut`]).
    pub fn view_of_mut(&mut self, peer: PeerId) -> &mut PartialView {
        &mut self.nodes[peer.index()].view
    }

    /// A peer's fresh (age-0) self-descriptor, as it would advertise
    /// itself in a shuffle.
    pub fn descriptor_of(&self, peer: PeerId) -> NodeDescriptor {
        self.self_descriptor(peer).descriptor
    }

    /// Iterator over alive peers.
    pub fn alive_peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.net.alive_peers()
    }

    fn self_descriptor(&self, peer: PeerId) -> BoundDescriptor {
        BoundDescriptor {
            descriptor: NodeDescriptor::new(
                peer,
                self.net.identity_endpoint(peer),
                self.net.class_of(peer),
            ),
            rvp: self.nodes[peer.index()].rvp,
        }
    }

    fn wire_view(&mut self, peer: PeerId) -> Vec<BoundDescriptor> {
        let mut out = self.entry_pool.acquire();
        let node = &self.nodes[peer.index()];
        out.reserve(node.view.len() + 1);
        out.push(self.self_descriptor(peer));
        for d in node.view.iter() {
            let rvp = node.bindings.get(&d.id).copied().flatten();
            out.push(BoundDescriptor { descriptor: *d, rvp });
        }
        out
    }

    /// Returns a consumed message's entry buffer to the pool.
    fn recycle_msg(&mut self, msg: StaticRvpMsg) {
        match msg {
            StaticRvpMsg::Request { entries, .. } | StaticRvpMsg::Response { entries, .. } => {
                self.entry_pool.release(entries)
            }
            StaticRvpMsg::Ping { .. } => {}
        }
    }

    fn message_bytes(&self, msg: &StaticRvpMsg) -> u32 {
        // Same size model as Nylon: 16 B per annotated entry, 20 B of
        // header + addressing; PING is header-only.
        match msg {
            StaticRvpMsg::Request { entries, .. } | StaticRvpMsg::Response { entries, .. } => {
                20 + 16 * entries.len() as u32
            }
            StaticRvpMsg::Ping { .. } => 8,
        }
    }

    fn send_msg(&mut self, from: PeerId, to_ep: Endpoint, msg: StaticRvpMsg) {
        let now = self.sim.now();
        let bytes = self.message_bytes(&msg);
        if let Some(flight) = self.net.send(now, from, to_ep, msg, bytes) {
            if let Some(ctx) = &mut self.shard {
                ctx.stage(&self.net, flight);
                return;
            }
            let at = flight.arrive_at;
            self.sim.schedule_at(at, Ev::Deliver(self.flights.insert(flight)));
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Shuffle(p) => self.on_shuffle(p),
            Ev::Deliver(key) => {
                let flight = self.flights.remove(key);
                self.on_deliver(flight);
            }
            Ev::Purge => {
                let now = self.sim.now();
                self.net.purge_expired_nat_state(now);
                self.sim.schedule_after(PURGE_EVERY, Ev::Purge);
            }
            Ev::Fault => self.on_fault(),
        }
    }

    fn on_fault(&mut self) {
        let now = self.sim.now();
        let Some(rt) = self.faults.as_mut() else { return };
        let shard = self.shard.as_ref();
        rt.apply_due(now, &mut self.net, |p| shard.is_none_or(|s| s.owns(p)), &mut Vec::new());
        if let Some(at) = rt.next_at() {
            self.sim.schedule_at(at, Ev::Fault);
        }
    }

    fn on_shuffle(&mut self, p: PeerId) {
        if !self.net.is_alive(p) {
            // Under a fault plan peers can be revived later: keep the timer
            // chain ticking idle so a revived peer resumes at its original
            // phase. Without faults, death is permanent and the chain ends
            // here (byte-identical to the pre-fault-plane behavior).
            if self.faults.is_some() {
                self.sim.schedule_after(self.cfg.shuffle_period, Ev::Shuffle(p));
            }
            return;
        }
        // Keep-alive / re-bind: a natted peer pings its RVP every period.
        if self.net.class_of(p).is_natted() {
            let rvp_dead = self.nodes[p.index()].rvp.is_none_or(|r| !self.net.is_alive(r));
            if rvp_dead {
                let publics: Vec<PeerId> =
                    self.net.alive_peers().filter(|q| self.net.class_of(*q).is_public()).collect();
                if publics.is_empty() {
                    // No RVP available: skip this round entirely.
                    self.sim.schedule_after(self.cfg.shuffle_period, Ev::Shuffle(p));
                    return;
                }
                let rvp = {
                    let node = &mut self.nodes[p.index()];
                    *node.rng.pick(&publics).expect("publics non-empty")
                };
                self.nodes[p.index()].rvp = Some(rvp);
                self.nodes[p.index()].silent_rounds = 0;
                self.stats.rebinds += 1;
            } else if self.harden && self.nodes[p.index()].silent_rounds >= FAILOVER_SILENT_ROUNDS {
                // Silence-based failover: the RVP looks alive by TTL but no
                // RESPONSE has made it back for several rounds — its relay
                // state (our hole, its client table) may be stale. Re-register
                // with a different live RVP from the view rather than
                // blackholing until the TTL catches up.
                let cur = self.nodes[p.index()].rvp;
                let mut candidates: Vec<PeerId> = self.nodes[p.index()]
                    .view
                    .iter()
                    .filter(|d| d.class.is_public())
                    .map(|d| d.id)
                    .filter(|q| Some(*q) != cur && self.net.is_alive(*q))
                    .collect();
                if candidates.is_empty() {
                    candidates = self
                        .net
                        .alive_peers()
                        .filter(|q| self.net.class_of(*q).is_public() && Some(*q) != cur)
                        .collect();
                }
                let picked = {
                    let node = &mut self.nodes[p.index()];
                    node.rng.pick(&candidates).copied()
                };
                if let Some(rvp) = picked {
                    self.nodes[p.index()].rvp = Some(rvp);
                    self.stats.failovers += 1;
                }
                self.nodes[p.index()].silent_rounds = 0;
            }
            if self.harden {
                let node = &mut self.nodes[p.index()];
                node.silent_rounds = node.silent_rounds.saturating_add(1);
            }
            let rvp = self.nodes[p.index()].rvp.expect("just bound");
            let rvp_ep = self.net.identity_endpoint(rvp);
            self.stats.pings_sent += 1;
            self.send_msg(p, rvp_ep, StaticRvpMsg::Ping { from: p });
        }
        let target = {
            let node = &mut self.nodes[p.index()];
            node.view.select_target(self.cfg.selection, &mut node.rng)
        };
        match target {
            None => self.stats.empty_view_rounds += 1,
            Some(target) => {
                self.stats.shuffles_initiated += 1;
                let entries = self.wire_view(p);
                let mut sent = self.id_pool.acquire();
                sent.extend(entries.iter().map(|e| e.descriptor.id));
                if let Some(old) = self.nodes[p.index()].pending_sent.insert(target.id, sent) {
                    self.id_pool.release(old);
                }
                let msg = StaticRvpMsg::Request {
                    src: self.self_descriptor(p),
                    dest: target.id,
                    entries,
                };
                if target.class.is_public() {
                    let ep = self.net.identity_endpoint(target.id);
                    self.send_msg(p, ep, msg);
                } else {
                    // Route via the target's RVP.
                    let rvp = self.nodes[p.index()].bindings.get(&target.id).copied().flatten();
                    match rvp.filter(|r| self.net.is_alive(*r)) {
                        Some(r) => {
                            let ep = self.net.identity_endpoint(r);
                            self.send_msg(p, ep, msg);
                        }
                        None => {
                            // Binding unknown or RVP dead: the reference is
                            // unusable (the failure mode the paper points
                            // out). Drop it.
                            self.nodes[p.index()].view.remove(target.id);
                            self.recycle_msg(msg);
                        }
                    }
                }
            }
        }
        self.nodes[p.index()].view.increase_age();
        self.sim.schedule_after(self.cfg.shuffle_period, Ev::Shuffle(p));
    }

    fn on_deliver(&mut self, flight: InFlight<StaticRvpMsg>) {
        let now = self.sim.now();
        let (to, from_ep, msg) = match self.net.deliver(now, flight) {
            Delivery::ToPeer { to, from_ep, payload } => (to, from_ep, payload),
            Delivery::Dropped { payload, .. } => {
                // The drop is counted by the fabric; the payload buffer
                // still goes back to the pool.
                self.recycle_msg(payload);
                return;
            }
        };
        match msg {
            StaticRvpMsg::Ping { from } => {
                // RVP duty: remember the client's hole endpoint.
                self.nodes[to.index()].clients.insert(from, from_ep);
            }
            StaticRvpMsg::Request { src, dest, entries } => {
                if dest != to {
                    // We are the target's RVP: forward through the client's
                    // hole.
                    match self.nodes[to.index()].clients.get(&dest).copied() {
                        Some(client_ep) => {
                            self.stats.relays += 1;
                            self.send_msg(
                                to,
                                client_ep,
                                StaticRvpMsg::Request { src, dest, entries },
                            );
                        }
                        None => {
                            self.stats.relay_failures += 1;
                            self.entry_pool.release(entries);
                        }
                    }
                    return;
                }
                self.stats.requests_completed += 1;
                let resp_entries = self.wire_view(to);
                let mut resp_sent = self.id_pool.acquire();
                resp_sent.extend(resp_entries.iter().map(|e| e.descriptor.id));
                let resp = StaticRvpMsg::Response {
                    from: to,
                    dest: src.descriptor.id,
                    entries: resp_entries,
                };
                if src.descriptor.class.is_public() {
                    let ep = self.net.identity_endpoint(src.descriptor.id);
                    self.send_msg(to, ep, resp);
                } else if let Some(r) = src.rvp.filter(|r| self.net.is_alive(*r)) {
                    let ep = self.net.identity_endpoint(r);
                    self.send_msg(to, ep, resp);
                } else {
                    // No way back to the initiator: the response is never
                    // sent (the paper's failure mode); recycle it.
                    self.recycle_msg(resp);
                }
                self.merge(to, &entries, &resp_sent);
                self.id_pool.release(resp_sent);
                self.entry_pool.release(entries);
            }
            StaticRvpMsg::Response { from, dest, entries } => {
                if dest != to {
                    match self.nodes[to.index()].clients.get(&dest).copied() {
                        Some(client_ep) => {
                            self.stats.relays += 1;
                            self.send_msg(
                                to,
                                client_ep,
                                StaticRvpMsg::Response { from, dest, entries },
                            );
                        }
                        None => {
                            self.stats.relay_failures += 1;
                            self.entry_pool.release(entries);
                        }
                    }
                    return;
                }
                self.stats.responses_completed += 1;
                self.nodes[to.index()].silent_rounds = 0;
                let sent = self.nodes[to.index()].pending_sent.remove(&from).unwrap_or_default();
                self.merge(to, &entries, &sent);
                self.id_pool.release(sent);
                self.entry_pool.release(entries);
            }
        }
    }

    fn merge(&mut self, me: PeerId, entries: &[BoundDescriptor], sent: &[PeerId]) {
        let mut descriptors = std::mem::take(&mut self.scratch_descs);
        let mut keep = std::mem::take(&mut self.scratch_keep);
        descriptors.clear();
        descriptors.extend(entries.iter().map(|e| e.descriptor));
        let node = &mut self.nodes[me.index()];
        for e in entries {
            if e.descriptor.id != me {
                node.bindings.insert(e.descriptor.id, e.rvp);
            }
        }
        node.view.merge_and_truncate(&descriptors, sent, self.cfg.merge, &mut node.rng);
        // Bound the binding cache: keep only bindings for current view
        // entries plus a small slack of recently seen peers.
        if node.bindings.len() > 8 * node.view.capacity() {
            keep.clear();
            keep.extend(node.view.ids());
            node.bindings.retain(|id, _| keep.contains(id));
        }
        self.scratch_descs = descriptors;
        self.scratch_keep = keep;
    }
}

impl ShardWorker for StaticRvpEngine {
    type Envelope = InFlight<StaticRvpMsg>;

    fn run_tick(&mut self, boundary: SimTime, out: &mut [Vec<InFlight<StaticRvpMsg>>]) {
        while let Some((_, ev)) = self.sim.step_before(boundary) {
            self.handle(ev);
        }
        self.sim.advance_to(boundary);
        self.shard.as_mut().expect("run_tick requires shard mode").drain_into(out);
    }

    fn absorb(&mut self, mut batch: Vec<InFlight<StaticRvpMsg>>) {
        sort_tick_batch(&mut batch);
        for f in batch {
            let at = f.arrive_at;
            self.sim.schedule_at(at, Ev::Deliver(self.flights.insert(f)));
        }
    }

    fn envelope_bytes(envelope: &InFlight<StaticRvpMsg>) -> u64 {
        envelope.wire_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nylon_net::NatType;

    fn engine(publics: usize, natted: usize, seed: u64) -> StaticRvpEngine {
        let mut eng = StaticRvpEngine::new(GossipConfig::default(), NetConfig::default(), seed);
        for _ in 0..publics {
            eng.add_peer(NatClass::Public);
        }
        for _ in 0..natted {
            eng.add_peer(NatClass::Natted(NatType::PortRestrictedCone));
        }
        eng.bootstrap_random_public(8);
        eng.start();
        eng
    }

    #[test]
    fn shuffles_complete_through_rvps() {
        let mut eng = engine(10, 40, 1);
        eng.run_rounds(40);
        let s = eng.stats();
        assert!(s.requests_completed > 0);
        assert!(s.responses_completed > 0);
        assert!(s.relays > 0, "natted targets require RVP relaying");
        assert!(s.pings_sent > 0);
    }

    #[test]
    fn public_peers_carry_disproportionate_load() {
        let mut eng = engine(10, 40, 2);
        eng.run_rounds(60);
        let (mut pub_bytes, mut pub_n, mut nat_bytes, mut nat_n) = (0u64, 0u64, 0u64, 0u64);
        for p in eng.alive_peers().collect::<Vec<_>>() {
            let b = eng.net().stats_of(p).bytes_total();
            if eng.net().class_of(p).is_public() {
                pub_bytes += b;
                pub_n += 1;
            } else {
                nat_bytes += b;
                nat_n += 1;
            }
        }
        let pub_avg = pub_bytes as f64 / pub_n as f64;
        let nat_avg = nat_bytes as f64 / nat_n as f64;
        // The paper's complaint: "public peers contribute much more to the
        // protocol than natted peers".
        assert!(
            pub_avg > 1.5 * nat_avg,
            "expected public overload, got public {pub_avg:.0} vs natted {nat_avg:.0}"
        );
    }

    #[test]
    fn rvp_death_invalidates_then_rebinds() {
        let mut eng = engine(5, 30, 3);
        eng.run_rounds(20);
        // Kill all public peers but one.
        let publics: Vec<PeerId> =
            eng.alive_peers().filter(|p| eng.net().class_of(*p).is_public()).collect();
        eng.kill_peers(&publics[1..]);
        eng.run_rounds(20);
        assert!(eng.stats().rebinds > 0, "orphaned clients must re-bind");
        // Gossip continues through the surviving RVP.
        let before = eng.stats().requests_completed;
        eng.run_rounds(10);
        assert!(eng.stats().requests_completed > before);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut eng = engine(8, 24, seed);
            eng.run_rounds(25);
            eng.stats()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn natted_views_fill_via_relays() {
        let mut eng = engine(10, 40, 5);
        eng.run_rounds(40);
        for p in eng.alive_peers().collect::<Vec<_>>() {
            assert!(!eng.view_of(p).is_empty(), "empty view at {p}");
        }
        // Natted peers participate in sampling (they appear in views).
        let natted_refs: usize = eng
            .alive_peers()
            .collect::<Vec<_>>()
            .iter()
            .map(|p| eng.view_of(*p).iter().filter(|d| d.class.is_natted()).count())
            .sum();
        assert!(natted_refs > 0, "natted peers missing from all views");
    }

    #[test]
    fn bindings_cache_stays_bounded() {
        let mut eng = engine(10, 40, 9);
        eng.run_rounds(60);
        for p in eng.alive_peers().collect::<Vec<_>>() {
            let n = eng.nodes[p.index()].bindings.len();
            assert!(n <= 8 * 15 + 16, "bindings cache of {p} grew to {n}");
        }
    }

    #[test]
    fn relay_failures_counted_for_unknown_clients() {
        // A fresh RVP that never heard a PING cannot relay.
        let mut eng = engine(2, 10, 13);
        eng.run_rounds(3);
        // Some relays may fail early before PINGs register clients; after
        // warm-up they succeed. Either way the counters are consistent.
        let s = eng.stats();
        assert!(s.relays + s.relay_failures > 0);
    }

    /// A partition leaves RVPs alive by TTL but silently unreachable — the
    /// exact blackhole silence-based failover exists for.
    fn faulted_engine(harden: bool, seed: u64) -> StaticRvpEngine {
        let mut eng = StaticRvpEngine::new(GossipConfig::default(), NetConfig::default(), seed);
        for _ in 0..8 {
            eng.add_peer(NatClass::Public);
        }
        for _ in 0..32 {
            eng.add_peer(NatClass::Natted(NatType::PortRestrictedCone));
        }
        let cfg = nylon_faults::FaultConfig {
            partition_at: SimTime::from_secs(30),
            partition_len: SimDuration::from_secs(30),
            partition_cut_fraction: 0.5,
            harden,
            ..nylon_faults::FaultConfig::default()
        };
        let classes: Vec<NatClass> = (0..40).map(|i| eng.net().class_of(PeerId(i))).collect();
        eng.install_fault_plan(FaultPlan::compile(&cfg, seed, &classes));
        eng.bootstrap_random_public(8);
        eng.start();
        eng.run_for(SimDuration::from_secs(90));
        eng
    }

    #[test]
    fn hardened_engine_fails_over_after_relay_silence() {
        let eng = faulted_engine(true, 17);
        assert_eq!(eng.fault_stats().partitions, 1, "the partition window must fire");
        assert!(eng.stats().failovers > 0, "relay silence must trigger RVP failover");
    }

    #[test]
    fn unhardened_engine_never_fails_over() {
        let eng = faulted_engine(false, 17);
        assert_eq!(eng.fault_stats().partitions, 1);
        assert_eq!(eng.stats().failovers, 0, "failover is hardened-mode only");
    }

    #[test]
    #[should_panic(expected = "at least one public peer")]
    fn requires_public_peers() {
        let mut eng = StaticRvpEngine::new(GossipConfig::default(), NetConfig::default(), 1);
        eng.add_peer(NatClass::Natted(NatType::RestrictedCone));
        eng.bootstrap_random_public(4);
    }
}
