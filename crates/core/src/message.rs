//! The Nylon wire protocol (Figure 6 message set) and its size model.

use nylon_gossip::NodeDescriptor;
use nylon_net::PeerId;
use nylon_sim::SimDuration;

/// A view entry as shipped on the wire: descriptor plus the sender's
/// remaining routing TTL towards it.
///
/// The paper: "TTLs are exchanged by peers together with their views" — the
/// receiver caps them by its own first-hop TTL (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEntry {
    /// The descriptor.
    pub descriptor: NodeDescriptor,
    /// Sender's remaining routing TTL towards the descriptor's peer
    /// (meaningless, and zero, for public peers — they need no route).
    pub ttl: SimDuration,
    /// Sender's estimated chain length towards the descriptor's peer
    /// (1 = direct hole; the receiver's chain is one hop longer).
    pub hops: u8,
}

impl WireEntry {
    /// Wraps a descriptor with its routing TTL and chain-length estimate.
    pub fn new(descriptor: NodeDescriptor, ttl: SimDuration, hops: u8) -> Self {
        WireEntry { descriptor, ttl, hops }
    }
}

/// Nylon protocol messages.
///
/// `via` is the peer the datagram physically came from last (source or
/// relay); `hops` counts forwarding steps for the Figure 9 chain-length
/// metric.
#[derive(Debug, Clone)]
pub enum NylonMsg {
    /// Shuffle request (Figure 6 line 4/7: `⟨REQUEST, view, self, target⟩`).
    Request {
        /// The initiating peer's descriptor.
        src: NodeDescriptor,
        /// Final destination (relays forward until `dest == self`).
        dest: PeerId,
        /// Immediate sender of this datagram.
        via: PeerId,
        /// Relay hops traversed so far.
        hops: u8,
        /// The initiator's view (with TTLs), plus its fresh self-descriptor.
        entries: Vec<WireEntry>,
    },
    /// Shuffle response (Figure 6 line 22/24: `⟨RESPONSE, view, src⟩`).
    Response {
        /// The responding peer.
        from: PeerId,
        /// Final destination (the shuffle initiator).
        dest: PeerId,
        /// Immediate sender of this datagram.
        via: PeerId,
        /// Relay hops traversed so far.
        hops: u8,
        /// The responder's view (with TTLs), plus its fresh self-descriptor.
        entries: Vec<WireEntry>,
    },
    /// Reactive hole-punch trigger, forwarded along the RVP chain
    /// (Figure 6 line 10: `⟨OPEN_HOLE, self, target⟩`).
    OpenHole {
        /// The peer wanting to punch a hole.
        src: NodeDescriptor,
        /// The peer that should answer with a PONG.
        dest: PeerId,
        /// Immediate sender of this datagram.
        via: PeerId,
        /// Relay hops traversed so far (the Figure 9 "number of RVPs").
        hops: u8,
    },
    /// Outbound-hole opener sent directly to the gossip target (Figure 6
    /// line 12).
    Ping {
        /// The pinging peer.
        from: PeerId,
    },
    /// Hole-punch acknowledgement (Figure 6 lines 38/43).
    Pong {
        /// The ponging peer.
        from: PeerId,
    },
}

/// Wire-size model for Nylon messages.
///
/// Sizes mirror a compact binary encoding: per entry, 13 bytes of
/// descriptor (id 4, endpoint 6, class 1, age 2) plus a 2-byte TTL and a
/// 1-byte chain-length estimate; fixed header of 8 bytes plus addressing
/// (src/dest/via/hops).
#[derive(Debug, Clone, Copy)]
pub struct WireSizeModel {
    /// Bytes per shipped view entry (descriptor + TTL).
    pub entry_bytes: u32,
    /// Fixed protocol header per message.
    pub header_bytes: u32,
    /// Addressing overhead for routed messages (src descriptor, dest, via,
    /// hops).
    pub routing_bytes: u32,
}

impl Default for WireSizeModel {
    fn default() -> Self {
        WireSizeModel { entry_bytes: 16, header_bytes: 8, routing_bytes: 12 }
    }
}

impl WireSizeModel {
    /// Payload bytes of a message.
    pub fn bytes_of(&self, msg: &NylonMsg) -> u32 {
        match msg {
            NylonMsg::Request { entries, .. } | NylonMsg::Response { entries, .. } => {
                self.header_bytes + self.routing_bytes + self.entry_bytes * entries.len() as u32
            }
            NylonMsg::OpenHole { .. } => self.header_bytes + self.routing_bytes,
            NylonMsg::Ping { .. } | NylonMsg::Pong { .. } => self.header_bytes,
        }
    }
}

impl NylonMsg {
    /// The final destination this message must be routed to, when it is a
    /// routed message (relays forward these).
    pub fn routed_dest(&self) -> Option<PeerId> {
        match self {
            NylonMsg::Request { dest, .. }
            | NylonMsg::Response { dest, .. }
            | NylonMsg::OpenHole { dest, .. } => Some(*dest),
            NylonMsg::Ping { .. } | NylonMsg::Pong { .. } => None,
        }
    }

    /// Short label for diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            NylonMsg::Request { .. } => "REQUEST",
            NylonMsg::Response { .. } => "RESPONSE",
            NylonMsg::OpenHole { .. } => "OPEN_HOLE",
            NylonMsg::Ping { .. } => "PING",
            NylonMsg::Pong { .. } => "PONG",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nylon_net::{Endpoint, Ip, NatClass, Port};

    fn desc(id: u32) -> NodeDescriptor {
        NodeDescriptor::new(PeerId(id), Endpoint::new(Ip(id), Port(9000)), NatClass::Public)
    }

    fn entries(n: usize) -> Vec<WireEntry> {
        (0..n as u32).map(|i| WireEntry::new(desc(i), SimDuration::from_secs(30), 1)).collect()
    }

    #[test]
    fn request_size_scales_with_entries() {
        let m = WireSizeModel::default();
        let mk = |n| NylonMsg::Request {
            src: desc(1),
            dest: PeerId(2),
            via: PeerId(1),
            hops: 0,
            entries: entries(n),
        };
        assert_eq!(m.bytes_of(&mk(0)), 20);
        assert_eq!(m.bytes_of(&mk(16)), 20 + 16 * 16);
    }

    #[test]
    fn control_messages_are_small() {
        let m = WireSizeModel::default();
        let oh = NylonMsg::OpenHole { src: desc(1), dest: PeerId(2), via: PeerId(1), hops: 0 };
        let ping = NylonMsg::Ping { from: PeerId(1) };
        let pong = NylonMsg::Pong { from: PeerId(1) };
        assert_eq!(m.bytes_of(&oh), 20);
        assert_eq!(m.bytes_of(&ping), 8);
        assert_eq!(m.bytes_of(&pong), 8);
    }

    #[test]
    fn routed_dest_only_for_routed_messages() {
        let oh = NylonMsg::OpenHole { src: desc(1), dest: PeerId(2), via: PeerId(1), hops: 0 };
        assert_eq!(oh.routed_dest(), Some(PeerId(2)));
        assert_eq!(NylonMsg::Ping { from: PeerId(1) }.routed_dest(), None);
        assert_eq!(NylonMsg::Pong { from: PeerId(1) }.routed_dest(), None);
    }

    #[test]
    fn labels() {
        assert_eq!(NylonMsg::Ping { from: PeerId(1) }.label(), "PING");
        assert_eq!(NylonMsg::Pong { from: PeerId(1) }.label(), "PONG");
    }
}
