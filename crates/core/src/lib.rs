//! Nylon: NAT-resilient gossip peer sampling (ICDCS 2009).
//!
//! This crate is the paper's primary contribution: a fully decentralized
//! peer-sampling protocol in which *every* peer — natted or public — acts as
//! a rendez-vous point (RVP), spreading the NAT-traversal load evenly.
//!
//! Two observations drive the design (Section 4 of the paper):
//!
//! 1. a gossip peer only ever needs to reach the peers *in its view*, not
//!    the whole network; and
//! 2. it contacts just **one** of them per period — so holes can be punched
//!    *reactively*, right before a shuffle, instead of proactively for every
//!    view entry.
//!
//! When `n4` wants to shuffle with `n1`, it sends an `OPEN_HOLE` message to
//! the RVP that handed it `n1`'s reference; that RVP forwards it along the
//! chain built by previous shuffles (`n4 → n3 → n2 → n1`, Figure 5) until
//! `n1` answers with a `PONG` that punches the hole. Symmetric-NAT
//! combinations that cannot be punched are relayed end-to-end over the same
//! chains. Routing entries carry TTLs bounded by the lifetime of the
//! underlying NAT holes and vanish when they expire.
//!
//! # Crate layout
//!
//! * [`config`] — protocol parameters ([`NylonConfig`]).
//! * [`message`] — the wire protocol of Figure 6 ([`NylonMsg`]).
//! * [`routing`] — RVP chains with TTLs ([`routing::RoutingTable`]).
//! * [`engine`] — the event-driven protocol engine ([`NylonEngine`]).
//! * [`static_rvp`] — the "assign every natted peer a public RVP" strawman
//!   the paper argues against, used as an ablation baseline.
//!
//! # Example
//!
//! ```
//! use nylon::{NylonConfig, NylonEngine};
//! use nylon_net::{NatClass, NatType, NetConfig};
//!
//! // 70 % of peers behind NATs, as is typical on today's Internet.
//! let mut eng = NylonEngine::new(NylonConfig::default(), NetConfig::default(), 1);
//! for _ in 0..15 {
//!     eng.add_peer(NatClass::Public);
//! }
//! for _ in 0..35 {
//!     eng.add_peer(NatClass::Natted(NatType::PortRestrictedCone));
//! }
//! eng.bootstrap_random_public(8);
//! eng.start();
//! eng.run_rounds(30);
//!
//! // Natted peers are sampled like everyone else.
//! let p = eng.alive_peers().next().unwrap();
//! assert!(!eng.view_of(p).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod engine;
pub mod message;
pub mod routing;
pub mod sampler;
pub mod static_rvp;

pub use config::NylonConfig;
pub use engine::{NylonEngine, NylonStats};
pub use message::{NylonMsg, WireEntry, WireSizeModel};
pub use sampler::StaticRvpConfig;
pub use static_rvp::{StaticRvpEngine, StaticRvpStats};
