//! The Nylon engine: reactive hole punching over chains of rendez-vous
//! peers, per Figure 6 of the paper.
//!
//! Each peer runs the (push/pull, rand, healer) shuffle of the generic
//! framework, extended with:
//!
//! * a [`crate::routing::RoutingTable`] mapping natted peers
//!   to the RVP that provided them, with chain TTLs (Figure 5);
//! * reactive hole punching: `OPEN_HOLE` forwarded along the RVP chain plus
//!   a direct `PING`, answered by a `PONG` that triggers the actual
//!   `REQUEST` (Figure 6 lines 8–12 and 35–46);
//! * relaying of whole shuffles for the symmetric-NAT combinations where no
//!   hole can be punched (lines 5–7 and 20–22).

use nylon_faults::{FaultPlan, FaultRuntime, FaultStats};
use nylon_gossip::{sort_tick_batch, NodeDescriptor, PartialView, ShardCtx};
use nylon_net::{
    BufferPool, Delivery, DenseMap, Endpoint, InFlight, NatClass, NatType, NetConfig, Network,
    Outbound, PeerId, Slab, SlabKey,
};
use nylon_sim::{ShardPlan, ShardWorker, Sim, SimDuration, SimRng, SimTime};

use crate::config::NylonConfig;
use crate::message::{NylonMsg, WireEntry};
use crate::routing::RoutingTable;

/// Aggregate Nylon protocol counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NylonStats {
    /// Shuffle rounds where a target was selected.
    pub shuffles_initiated: u64,
    /// Rounds skipped for lack of view entries.
    pub empty_view_rounds: u64,
    /// Shuffles sent directly (public target or live hole).
    pub direct_requests: u64,
    /// Shuffles relayed end-to-end (symmetric combinations).
    pub relayed_requests: u64,
    /// Hole punches initiated (OPEN_HOLE sent).
    pub hole_punches: u64,
    /// Hole punches that completed (PONG received, REQUEST sent).
    pub punch_successes: u64,
    /// Hole punches abandoned after the punch timeout.
    pub punch_timeouts: u64,
    /// Rounds lost because a natted target had no live route; the stale
    /// entry is dropped from the view.
    pub routes_missing: u64,
    /// Messages forwarded on behalf of other peers (RVP duty).
    pub forwards: u64,
    /// Forwarding attempts without a live route.
    pub forward_failures: u64,
    /// REQUESTs that reached their final destination.
    pub requests_completed: u64,
    /// RESPONSEs that reached the shuffle initiator.
    pub responses_completed: u64,
    /// PONGs sent.
    pub pongs_sent: u64,
    /// Sum of RVP-chain lengths observed at destinations (Figure 9).
    pub chain_hops_sum: u64,
    /// Number of chain-length samples.
    pub chain_samples: u64,
    /// Routing-table entries installed from shuffle payloads (Figure 6
    /// `update_routing_table()` upserts).
    pub routes_installed: u64,
    /// Routing-table entries compacted away after their TTL expired — the
    /// cost center PR 5's profiling named.
    pub route_ttl_expiries: u64,
    /// Hardened mode: punches re-sent after a timeout (bounded exponential
    /// backoff) instead of being abandoned.
    pub punch_retries: u64,
    /// Hardened mode: punches that completed on a retry attempt.
    pub punch_retry_wins: u64,
    /// Hardened mode: observed-endpoint mismatches (a mid-session NAT
    /// rebind) answered with an immediate re-punch PING.
    pub stale_repunches: u64,
}

impl NylonStats {
    /// Adds another counter set into this one. In a sharded run every
    /// protocol event is counted on exactly one shard (the one owning the
    /// acting node), so summing per-shard counters reproduces the
    /// single-engine totals.
    pub fn merge(&mut self, other: &NylonStats) {
        self.shuffles_initiated += other.shuffles_initiated;
        self.empty_view_rounds += other.empty_view_rounds;
        self.direct_requests += other.direct_requests;
        self.relayed_requests += other.relayed_requests;
        self.hole_punches += other.hole_punches;
        self.punch_successes += other.punch_successes;
        self.punch_timeouts += other.punch_timeouts;
        self.routes_missing += other.routes_missing;
        self.forwards += other.forwards;
        self.forward_failures += other.forward_failures;
        self.requests_completed += other.requests_completed;
        self.responses_completed += other.responses_completed;
        self.pongs_sent += other.pongs_sent;
        self.chain_hops_sum += other.chain_hops_sum;
        self.chain_samples += other.chain_samples;
        self.routes_installed += other.routes_installed;
        self.route_ttl_expiries += other.route_ttl_expiries;
        self.punch_retries += other.punch_retries;
        self.punch_retry_wins += other.punch_retry_wins;
        self.stale_repunches += other.stale_repunches;
    }

    fn record_chain(&mut self, hops: u8) {
        self.chain_hops_sum += hops as u64;
        self.chain_samples += 1;
    }

    /// Mean RVP-chain length towards natted destinations (Figure 9's
    /// y-axis), or `None` if no chain was observed.
    pub fn mean_chain_len(&self) -> Option<f64> {
        if self.chain_samples == 0 {
            None
        } else {
            Some(self.chain_hops_sum as f64 / self.chain_samples as f64)
        }
    }
}

/// State of one outstanding hole punch.
#[derive(Debug, Clone, Copy, Default)]
struct Punch {
    /// When the punch is considered failed.
    deadline: SimTime,
    /// Retries already spent — stays 0 outside hardened mode.
    attempts: u8,
    /// The target's advertised endpoint, kept for retry PINGs.
    addr: Endpoint,
}

#[derive(Debug)]
struct Node {
    view: PartialView,
    /// Routes *and* observed contact endpoints: the endpoint a direct
    /// route's hole was observed from lives inside the route entry, so a
    /// receive touches one map instead of two.
    routing: RoutingTable,
    /// Outstanding hole punches by target.
    pending_punch: DenseMap<PeerId, Punch>,
    /// Ids shipped per outstanding shuffle, for the swapper merge policy.
    pending_sent: DenseMap<PeerId, Vec<PeerId>>,
    rng: SimRng,
}

/// Engine events. `Deliver` carries a slab handle — the ~100 B
/// [`InFlight`] datagram parks in the engine's flight slab while the
/// 4-byte key travels through the timer wheel.
#[derive(Debug)]
enum Ev {
    Shuffle(PeerId),
    Deliver(SlabKey),
    Purge,
    /// The next fault-plan event is due (see [`nylon_faults`]).
    Fault,
}

// The whole point of the slab indirection: wheeled events stay slim.
const _: () = assert!(std::mem::size_of::<Ev>() <= 32, "Ev must stay slim for the timer wheel");

/// Interval between NAT/contact-cache garbage-collection sweeps.
const PURGE_EVERY: SimDuration = SimDuration::from_secs(60);

/// Hardened mode: total punch tries (initial + retries) before giving up.
const PUNCH_MAX_ATTEMPTS: u32 = 3;

/// The Nylon protocol engine.
///
/// Mirrors [`nylon_gossip::BaselineEngine`]'s API so the experiment harness
/// can drive either interchangeably.
///
/// ```
/// use nylon::{NylonConfig, NylonEngine};
/// use nylon_net::{NatClass, NatType, NetConfig};
///
/// let mut eng = NylonEngine::new(NylonConfig::default(), NetConfig::default(), 7);
/// for _ in 0..10 {
///     eng.add_peer(NatClass::Public);
/// }
/// for _ in 0..30 {
///     eng.add_peer(NatClass::Natted(NatType::PortRestrictedCone));
/// }
/// eng.bootstrap_random_public(8);
/// eng.start();
/// eng.run_rounds(30);
/// assert!(eng.stats().punch_successes > 0, "holes must get punched");
/// ```
#[derive(Debug)]
pub struct NylonEngine {
    sim: Sim<Ev>,
    net: Network<NylonMsg>,
    cfg: NylonConfig,
    nodes: Vec<Node>,
    stats: NylonStats,
    started: bool,
    sample_log: Option<Vec<u32>>,
    wire_tap: Option<Vec<Outbound<NylonMsg>>>,
    /// Recycled wire-entry buffers: every REQUEST/RESPONSE view travels in
    /// a pooled `Vec<WireEntry>` that returns here once the message is
    /// consumed, so steady-state shuffling allocates nothing (see
    /// `nylon_net::pool`).
    entry_pool: BufferPool<WireEntry>,
    /// Recycled id buffers for the shipped-id lists of the swapper merge.
    id_pool: BufferPool<PeerId>,
    /// Reused scratch for the descriptor projection of a merge.
    scratch_descs: Vec<NodeDescriptor>,
    /// In-flight datagrams, parked here while their 4-byte handle travels
    /// through the timer wheel (see [`Ev`]); slots recycle.
    flights: Slab<InFlight<NylonMsg>>,
    /// `Some` when this engine is one worker of a sharded run (see
    /// `nylon_gossip::sharded`).
    shard: Option<ShardCtx<NylonMsg>>,
    /// `Some` when a fault plan is installed (see
    /// [`install_fault_plan`](Self::install_fault_plan)).
    faults: Option<FaultRuntime>,
    /// Graceful-degradation switch, cached off the installed plan: punch
    /// retries, stale-mapping re-punch.
    harden: bool,
}

impl NylonEngine {
    /// Creates an engine; `seed` drives every random choice in the run.
    ///
    /// # Panics
    ///
    /// Panics if the network's hole timeout differs from the protocol's
    /// `hole_timeout` (the TTL bookkeeping would be meaningless).
    pub fn new(cfg: NylonConfig, net_cfg: NetConfig, seed: u64) -> Self {
        assert_eq!(
            cfg.hole_timeout, net_cfg.hole_timeout,
            "protocol HOLE_TIMEOUT must match the NAT boxes' rule lifetime"
        );
        let sim = Sim::new(seed);
        let net = Network::new(net_cfg, seed ^ 0x4E59_4C4F_4E00_0002);
        NylonEngine {
            sim,
            net,
            cfg,
            nodes: Vec::new(),
            stats: NylonStats::default(),
            started: false,
            sample_log: None,
            wire_tap: None,
            entry_pool: BufferPool::new(),
            id_pool: BufferPool::new(),
            scratch_descs: Vec::new(),
            flights: Slab::new(),
            shard: None,
            faults: None,
            harden: false,
        }
    }

    /// Installs a compiled fault plan: applies its topology faults now and
    /// schedules its timed events. Call after the population is added and
    /// before bootstrap, so descriptors advertise post-CGN identities.
    ///
    /// # Panics
    ///
    /// Panics if the engine has already started or a plan is installed.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        assert!(!self.started, "install the fault plan before start()");
        assert!(self.faults.is_none(), "fault plan already installed");
        plan.apply_topology(&mut self.net);
        self.harden = plan.harden;
        let count_global = self.shard.as_ref().is_none_or(|s| s.idx == 0);
        let rt = FaultRuntime::new(plan, count_global);
        if let Some(at) = rt.next_at() {
            self.sim.schedule_at(at, Ev::Fault);
        }
        self.faults = Some(rt);
    }

    /// Counters of faults applied so far (ownership-filtered in shard
    /// mode; see [`FaultStats`]).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats()).unwrap_or_default()
    }

    /// Turns this engine into worker `idx` of a sharded run (see
    /// `nylon_gossip::sharded`). Must be called on a fresh engine, before
    /// any peer is added.
    ///
    /// # Panics
    ///
    /// Panics if the engine has already been populated or started.
    pub fn set_shard(&mut self, plan: ShardPlan, idx: usize) {
        assert!(!self.started && self.nodes.is_empty(), "set_shard requires a fresh engine");
        self.shard = Some(ShardCtx::new(plan, idx));
    }

    /// Whether this engine materializes protocol state for `peer` — always
    /// true outside shard mode.
    fn owns(&self, peer: PeerId) -> bool {
        self.shard.as_ref().is_none_or(|s| s.owns(peer))
    }

    /// Total events processed by the local event loop.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Switches the engine to wire-tap mode: datagrams are no longer routed
    /// through the simulated fabric but collected for an external transport
    /// (see [`NylonEngine::take_outbound`]), and inbound datagrams enter
    /// via [`NylonEngine::deliver_wire`]. Protocol behaviour — shuffling,
    /// hole punching, relaying, routing — is untouched; only the carriage
    /// substrate changes. The NAT behaviour then lives on the wire (the
    /// user-space NAT emulator), not in the internal fabric.
    pub fn enable_wire_tap(&mut self) {
        self.wire_tap = Some(Vec::new());
    }

    /// Drains the datagrams queued since the last call (wire-tap mode).
    pub fn take_outbound(&mut self) -> Vec<Outbound<NylonMsg>> {
        self.wire_tap.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Injects a datagram received from an external transport, addressed to
    /// `to` and observed as coming from `from_ep` (post-NAT). The protocol
    /// handling is identical to a simulated delivery.
    pub fn deliver_wire(&mut self, to: PeerId, from_ep: Endpoint, msg: NylonMsg) {
        if !self.net.is_alive(to) {
            return;
        }
        self.net.note_received(to, self.cfg.wire.bytes_of(&msg));
        self.on_msg(to, from_ep, msg);
    }

    /// Starts recording every gossip-target selection (peer ids, in
    /// selection order) for randomness analysis. Call before running.
    pub fn enable_sample_log(&mut self) {
        self.sample_log = Some(Vec::new());
    }

    /// The recorded target selections, if logging was enabled.
    pub fn sample_log(&self) -> Option<&[u32]> {
        self.sample_log.as_deref()
    }

    /// The protocol configuration.
    pub fn config(&self) -> &NylonConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The underlying network (for oracles and traffic stats).
    pub fn net(&self) -> &Network<NylonMsg> {
        &self.net
    }

    /// Protocol counters.
    pub fn stats(&self) -> NylonStats {
        self.stats
    }

    /// Reports kernel, net, and engine-layer telemetry into `out`.
    /// Read-only: see `PeerSampler::obs_report`'s contract.
    pub fn obs_report(&self, out: &mut nylon_obs::Report) {
        self.sim.obs_report(out);
        self.net.obs_report(out);
        self.entry_pool.obs_report(out);
        self.id_pool.obs_report(out);
        let s = &self.stats;
        out.counter("engine.nylon", "shuffles_initiated", s.shuffles_initiated);
        out.counter("engine.nylon", "empty_view_rounds", s.empty_view_rounds);
        out.counter("engine.nylon", "direct_requests", s.direct_requests);
        out.counter("engine.nylon", "relayed_requests", s.relayed_requests);
        out.counter("engine.nylon", "hole_punches", s.hole_punches);
        out.counter("engine.nylon", "punch_successes", s.punch_successes);
        out.counter("engine.nylon", "punch_timeouts", s.punch_timeouts);
        out.counter("engine.nylon", "routes_missing", s.routes_missing);
        out.counter("engine.nylon", "rvp_forwards", s.forwards);
        out.counter("engine.nylon", "rvp_forward_failures", s.forward_failures);
        out.counter("engine.nylon", "requests_completed", s.requests_completed);
        out.counter("engine.nylon", "responses_completed", s.responses_completed);
        out.counter("engine.nylon", "pongs_sent", s.pongs_sent);
        out.counter("engine.nylon", "chain_hops_sum", s.chain_hops_sum);
        out.counter("engine.nylon", "chain_samples", s.chain_samples);
        out.counter("engine.nylon", "routes_installed", s.routes_installed);
        out.counter("engine.nylon", "route_ttl_expiries", s.route_ttl_expiries);
        out.counter("engine.nylon", "punch_retries", s.punch_retries);
        out.counter("engine.nylon", "punch_retry_wins", s.punch_retry_wins);
        out.counter("engine.nylon", "stale_repunches", s.stale_repunches);
        if let Some(f) = &self.faults {
            f.obs_report(out);
        }
        // RouteMap storage health: snapshot-time walk over every node's
        // table (read-only — the hot path carries no histogram state).
        let mut probe = nylon_obs::Histogram::new();
        let (mut entries, mut capacity) = (0u64, 0u64);
        for node in &self.nodes {
            let (len, cap) = node.routing.probe_stats(&mut probe);
            entries += len;
            capacity += cap;
        }
        out.counter("routing", "installs", s.routes_installed);
        out.counter("routing", "ttl_expiries", s.route_ttl_expiries);
        out.gauge("routing", "entries", entries);
        out.gauge("routing", "slots", capacity);
        let snap = probe.snapshot();
        if snap.count > 0 {
            out.histogram("routing", "probe_len", snap);
        }
    }

    /// Adds a peer; if the engine is running, it starts shuffling within
    /// one period.
    pub fn add_peer(&mut self, class: NatClass) -> PeerId {
        let id = self.net.add_peer(class);
        let rng = self.sim.rng().fork(0x4E79_6C6F_0000_0000 | id.0 as u64);
        self.nodes.push(Node {
            view: PartialView::new(id, self.cfg.view_size),
            routing: RoutingTable::new(id),
            pending_punch: DenseMap::new(),
            pending_sent: DenseMap::new(),
            rng,
        });
        if self.started && self.owns(id) {
            let phase = {
                let period = self.cfg.shuffle_period.as_millis();
                let node = &mut self.nodes[id.index()];
                SimDuration::from_millis(node.rng.gen_range(0..period))
            };
            self.sim.schedule_after(phase, Ev::Shuffle(id));
        }
        id
    }

    /// Enables a permanent UPnP/NAT-PMP port forwarding for a natted peer
    /// (no-op for public peers). Call before bootstrapping so descriptors
    /// advertise the forwarded endpoint.
    pub fn enable_port_forwarding(&mut self, peer: PeerId) {
        let _ = self.net.enable_port_forwarding(peer);
    }

    /// Adds a peer whose initial view contains `contacts`, with pre-opened
    /// holes and direct routes (the join handshake).
    pub fn add_peer_with_bootstrap(&mut self, class: NatClass, contacts: &[PeerId]) -> PeerId {
        let id = self.add_peer(class);
        let now = self.sim.now();
        for c in contacts {
            if *c == id || !self.net.is_alive(*c) {
                continue;
            }
            let Some(ep) = self.net.open_bootstrap_hole(now, id, *c) else { continue };
            let d = NodeDescriptor::new(*c, self.net.identity_endpoint(*c), self.net.class_of(*c));
            let node = &mut self.nodes[id.index()];
            node.view.insert(d);
            node.routing.touch_direct(*c, self.cfg.hole_timeout, ep);
        }
        id
    }

    /// Fills every view with up to `per_view` random *public* peers (the
    /// paper's bootstrap). With no public peers in the population, falls
    /// back to arbitrary peers with pre-opened holes (see
    /// [`Network::open_bootstrap_hole`]).
    pub fn bootstrap_random_public(&mut self, per_view: usize) {
        let now = self.sim.now();
        let publics: Vec<PeerId> =
            self.net.alive_peers().filter(|p| self.net.class_of(*p).is_public()).collect();
        let fallback = publics.is_empty();
        let pool: Vec<PeerId> = if fallback { self.net.alive_peers().collect() } else { publics };
        let all: Vec<PeerId> = self.net.alive_peers().collect();
        for p in all {
            let owned = self.owns(p);
            if !owned && !fallback {
                // Another shard fills this node's view from the same
                // per-node stream; without hole-opening there is nothing
                // global to replay here.
                continue;
            }
            let candidates: Vec<PeerId> = pool.iter().copied().filter(|q| *q != p).collect();
            let chosen = if owned {
                let node = &mut self.nodes[p.index()];
                node.rng.sample_without_replacement(&candidates, per_view)
            } else {
                // Fallback bootstrap opens NAT holes, which mutate *both*
                // endpoints' boxes — global state every shard replicates.
                // Replay the non-owned node's choices from a fresh fork of
                // its stream: pre-bootstrap the stored stream has had no
                // draws, so the fork is draw-for-draw identical.
                let mut probe = self.sim.rng().fork(0x4E79_6C6F_0000_0000 | p.0 as u64);
                probe.sample_without_replacement(&candidates, per_view)
            };
            for q in chosen {
                if owned {
                    let d =
                        NodeDescriptor::new(q, self.net.identity_endpoint(q), self.net.class_of(q));
                    self.nodes[p.index()].view.insert(d);
                }
                if fallback {
                    if let Some(ep) = self.net.open_bootstrap_hole(now, p, q) {
                        if owned {
                            let node = &mut self.nodes[p.index()];
                            node.routing.touch_direct(q, self.cfg.hole_timeout, ep);
                        }
                    }
                }
            }
        }
    }

    /// Schedules every peer's first shuffle (random phase) and the periodic
    /// garbage collection.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self) {
        assert!(!self.started, "engine already started");
        self.started = true;
        let period = self.cfg.shuffle_period.as_millis();
        let peers: Vec<PeerId> = self.net.alive_peers().collect();
        for p in peers {
            // In shard mode only owned nodes get timers; skipping the
            // phase draw too is safe because each node draws from its own
            // forked stream.
            if !self.owns(p) {
                continue;
            }
            let phase = {
                let node = &mut self.nodes[p.index()];
                SimDuration::from_millis(node.rng.gen_range(0..period))
            };
            self.sim.schedule_after(phase, Ev::Shuffle(p));
        }
        self.sim.schedule_after(PURGE_EVERY, Ev::Purge);
    }

    /// Runs the simulation for `dur` of virtual time.
    pub fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.sim.now() + dur;
        while let Some((_, ev)) = self.sim.step_before(deadline) {
            self.handle(ev);
        }
        self.sim.advance_to(deadline);
    }

    /// Runs for `n` shuffle periods.
    pub fn run_rounds(&mut self, n: u64) {
        self.run_for(self.cfg.shuffle_period * n);
    }

    /// Kills a set of peers simultaneously (fail-stop churn).
    pub fn kill_peers(&mut self, peers: &[PeerId]) {
        for p in peers {
            self.net.kill_peer(*p);
        }
    }

    /// The view of a peer (dead peers keep their last view).
    pub fn view_of(&self, peer: PeerId) -> &PartialView {
        &self.nodes[peer.index()].view
    }

    /// Mutable view access (the adversary seam; see
    /// [`nylon_gossip::PeerSampler::view_of_mut`]).
    pub fn view_of_mut(&mut self, peer: PeerId) -> &mut PartialView {
        &mut self.nodes[peer.index()].view
    }

    /// A peer's fresh (age-0) self-descriptor, as it would advertise
    /// itself in a shuffle.
    pub fn descriptor_of(&self, peer: PeerId) -> NodeDescriptor {
        self.self_descriptor(peer)
    }

    /// The routing table of a peer.
    pub fn routing_of(&self, peer: PeerId) -> &RoutingTable {
        &self.nodes[peer.index()].routing
    }

    /// Iterator over alive peers.
    pub fn alive_peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.net.alive_peers()
    }

    fn self_descriptor(&self, peer: PeerId) -> NodeDescriptor {
        NodeDescriptor::new(peer, self.net.identity_endpoint(peer), self.net.class_of(peer))
    }

    /// The view as shipped on the wire towards `to`: fresh self-descriptor
    /// first, each natted entry annotated with the sender's remaining
    /// routing TTL.
    ///
    /// Split horizon: entries whose route points *through the receiver*
    /// ship a zero TTL. Without this, two peers that hand each other the
    /// same reference end up with mutually recursive RVP chains (the
    /// distance-vector count-to-infinity problem), and OPEN_HOLE messages
    /// bounce between them instead of reaching the destination.
    fn wire_view(&mut self, peer: PeerId, to: PeerId) -> Vec<WireEntry> {
        let mut out = self.entry_pool.acquire();
        self.fill_wire_view(peer, to, &mut out);
        out
    }

    /// [`NylonEngine::wire_view`] into a caller-provided (pooled) buffer.
    fn fill_wire_view(&self, peer: PeerId, to: PeerId, out: &mut Vec<WireEntry>) {
        let node = &self.nodes[peer.index()];
        out.clear();
        out.reserve(node.view.len() + 1);
        out.push(WireEntry::new(self.self_descriptor(peer), self.cfg.hole_timeout, 0));
        for d in node.view.iter() {
            let (ttl, hops) = if d.class.is_public() {
                (SimDuration::ZERO, 0)
            } else {
                match node.routing.entry_of(d.id) {
                    Some(e) if e.rvp == to && d.id != to => (SimDuration::ZERO, 0),
                    Some(e) => (e.ttl, e.hops),
                    None => (SimDuration::ZERO, 0),
                }
            };
            out.push(WireEntry::new(*d, ttl, hops));
        }
    }

    /// A pooled id buffer holding the descriptor ids of `entries` (the
    /// shipped-id list the swapper merge consults).
    fn sent_ids(pool: &mut BufferPool<PeerId>, entries: &[WireEntry]) -> Vec<PeerId> {
        let mut v = pool.acquire();
        v.extend(entries.iter().map(|e| e.descriptor.id));
        v
    }

    /// Records the ids shipped to `target`, recycling any buffer left from
    /// an earlier, unanswered exchange with the same target.
    fn note_pending_sent(&mut self, p: PeerId, target: PeerId, sent: Vec<PeerId>) {
        if let Some(old) = self.nodes[p.index()].pending_sent.insert(target, sent) {
            self.id_pool.release(old);
        }
    }

    /// Returns a consumed message's entry buffer to the pool.
    fn recycle_msg(&mut self, msg: NylonMsg) {
        match msg {
            NylonMsg::Request { entries, .. } | NylonMsg::Response { entries, .. } => {
                self.entry_pool.release(entries)
            }
            NylonMsg::OpenHole { .. } | NylonMsg::Ping { .. } | NylonMsg::Pong { .. } => {}
        }
    }

    /// The endpoint `me` should use to reach `peer` directly: public
    /// identity, else the last observed endpoint, else the advertised
    /// fallback.
    fn contact_ep(&self, me: PeerId, peer: PeerId, fallback: Option<Endpoint>) -> Option<Endpoint> {
        let class = self.net.class_of(peer);
        if class.is_public() {
            return Some(self.net.identity_endpoint(peer));
        }
        self.nodes[me.index()].routing.contact_of(peer).or(fallback)
    }

    fn send_msg(&mut self, from: PeerId, to_ep: Endpoint, msg: NylonMsg) {
        let bytes = self.cfg.wire.bytes_of(&msg);
        if let Some(tap) = &mut self.wire_tap {
            tap.push(Outbound { from, dst: to_ep, payload_bytes: bytes, payload: msg });
            self.net.note_sent(from, bytes);
            return;
        }
        let now = self.sim.now();
        if let Some(flight) = self.net.send(now, from, to_ep, msg, bytes) {
            if let Some(ctx) = &mut self.shard {
                ctx.stage(&self.net, flight);
            } else {
                let at = flight.arrive_at;
                self.sim.schedule_at(at, Ev::Deliver(self.flights.insert(flight)));
            }
        }
    }

    /// Sends a routed message towards `dest` via the first directly
    /// reachable hop of `from`'s RVP chain. Returns `false` (sending
    /// nothing, recycling the message's buffers) if the chain is broken.
    fn route_and_send(&mut self, from: PeerId, dest: PeerId, msg: NylonMsg) -> bool {
        let hop = {
            let node = &self.nodes[from.index()];
            node.routing.resolve_first_hop(dest, self.cfg.max_chain_depth)
        };
        let ep = hop.and_then(|hop| self.contact_ep(from, hop, None));
        match ep {
            Some(ep) => {
                self.send_msg(from, ep, msg);
                true
            }
            None => {
                self.recycle_msg(msg);
                false
            }
        }
    }

    /// Marks `via` as directly reachable: refresh the direct route and
    /// remember the observed endpoint (every `on receive` in Figure 6
    /// starts with `update_next_RVP(p, p, HOLE_TIMEOUT)`).
    ///
    /// Hardened mode adds stale-mapping detection: if the observed
    /// endpoint *moved* (a mid-session NAT rebind re-ported the peer), the
    /// old hole is gone — answer with an immediate PING to the fresh
    /// endpoint so our own NAT opens an egress session towards it, instead
    /// of silently blackholing until TTL death.
    fn touch(&mut self, me: PeerId, via: PeerId, observed: Endpoint) {
        if self.harden {
            let prior = self.nodes[me.index()].routing.contact_of(via);
            if prior.is_some_and(|c| c != observed) {
                self.stats.stale_repunches += 1;
                self.send_msg(me, observed, NylonMsg::Ping { from: me });
            }
        }
        self.nodes[me.index()].routing.touch_direct(via, self.cfg.hole_timeout, observed);
    }

    /// Hardened punch-timeout handling: re-send the OPEN_HOLE + PING pair
    /// with bounded exponential backoff and deterministic jitter from the
    /// node's own RNG stream, up to [`PUNCH_MAX_ATTEMPTS`] total tries.
    fn retry_punch(&mut self, p: PeerId, t: PeerId, mut punch: Punch, now: SimTime) {
        if u32::from(punch.attempts) + 1 >= PUNCH_MAX_ATTEMPTS {
            self.stats.punch_timeouts += 1;
            return;
        }
        let msg = NylonMsg::OpenHole { src: self.self_descriptor(p), dest: t, via: p, hops: 0 };
        if !self.route_and_send(p, t, msg) {
            // The chain died too; nothing left to retry through.
            self.stats.punch_timeouts += 1;
            return;
        }
        punch.attempts += 1;
        self.stats.punch_retries += 1;
        if !self.net.class_of(p).is_public() {
            self.send_msg(p, punch.addr, NylonMsg::Ping { from: p });
        }
        let backoff = self.cfg.punch_timeout * (1u64 << punch.attempts.min(6));
        let jitter = {
            let node = &mut self.nodes[p.index()];
            SimDuration::from_millis(
                node.rng.gen_range(0..self.cfg.punch_timeout.as_millis().max(2)),
            )
        };
        punch.deadline = now + backoff + jitter;
        self.nodes[p.index()].pending_punch.insert(t, punch);
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Shuffle(p) => self.on_shuffle(p),
            Ev::Deliver(key) => {
                let flight = self.flights.remove(key);
                self.on_deliver(flight);
            }
            Ev::Purge => {
                let now = self.sim.now();
                self.net.purge_expired_nat_state(now);
                // Contact endpoints live inside the routing entries and
                // expire with them; no separate sweep needed.
                self.sim.schedule_after(PURGE_EVERY, Ev::Purge);
            }
            Ev::Fault => self.on_fault(),
        }
    }

    /// Applies due fault-plan events and re-arms for the next instant.
    /// Revived peers resume at their original phase: under a fault plan,
    /// dead peers' shuffle chains keep ticking idle (see
    /// [`on_shuffle`](Self::on_shuffle)).
    fn on_fault(&mut self) {
        let now = self.sim.now();
        let Some(rt) = self.faults.as_mut() else { return };
        let shard = self.shard.as_ref();
        rt.apply_due(now, &mut self.net, |p| shard.is_none_or(|s| s.owns(p)), &mut Vec::new());
        if let Some(at) = rt.next_at() {
            self.sim.schedule_at(at, Ev::Fault);
        }
    }

    /// Figure 6, lines 1–14.
    fn on_shuffle(&mut self, p: PeerId) {
        if !self.net.is_alive(p) {
            // Dead peers stop shuffling; the timer chain normally ends
            // here. Under a fault plan the chain keeps ticking idle so a
            // later Revive fault resumes shuffling at the original phase
            // (no rescheduling, hence no cross-shard tie hazards).
            if self.faults.is_some() {
                self.sim.schedule_after(self.cfg.shuffle_period, Ev::Shuffle(p));
            }
            return;
        }
        let now = self.sim.now();
        // Expire abandoned hole punches (skip the bucket walk when no
        // punch is outstanding — the common case for public peers).
        {
            let node = &mut self.nodes[p.index()];
            if !node.pending_punch.is_empty() {
                if self.harden {
                    let mut expired: Vec<(PeerId, Punch)> = Vec::new();
                    node.pending_punch.retain(|t, punch| {
                        if punch.deadline > now {
                            true
                        } else {
                            expired.push((*t, *punch));
                            false
                        }
                    });
                    for (t, punch) in expired {
                        self.retry_punch(p, t, punch, now);
                    }
                } else {
                    let before = node.pending_punch.len();
                    node.pending_punch.retain(|_, punch| punch.deadline > now);
                    self.stats.punch_timeouts += (before - node.pending_punch.len()) as u64;
                }
            }
        }
        let self_class = self.net.class_of(p);
        let target = {
            let node = &mut self.nodes[p.index()];
            node.view.select_target(self.cfg.selection, &mut node.rng)
        };
        match target {
            None => self.stats.empty_view_rounds += 1,
            Some(target) => {
                if let Some(log) = &mut self.sample_log {
                    log.push(target.id.0);
                }
                self.stats.shuffles_initiated += 1;
                self.initiate(p, self_class, target);
            }
        }
        let node = &mut self.nodes[p.index()];
        node.view.increase_age();
        self.stats.route_ttl_expiries += node.routing.decrease_ttls(self.cfg.shuffle_period);
        self.sim.schedule_after(self.cfg.shuffle_period, Ev::Shuffle(p));
    }

    /// Figure 6, lines 3–12: direct send, relaying, or reactive hole
    /// punching depending on the NAT combination.
    fn initiate(&mut self, p: PeerId, self_class: NatClass, target: NodeDescriptor) {
        let t = target.id;
        let direct = target.class.is_public() || self.nodes[p.index()].routing.is_direct(t);
        if direct {
            let entries = self.wire_view(p, t);
            let sent = Self::sent_ids(&mut self.id_pool, &entries);
            self.note_pending_sent(p, t, sent);
            let ep =
                self.contact_ep(p, t, Some(target.addr)).expect("fallback endpoint always present");
            let msg = NylonMsg::Request {
                src: self.self_descriptor(p),
                dest: t,
                via: p,
                hops: 0,
                entries,
            };
            self.send_msg(p, ep, msg);
            self.stats.direct_requests += 1;
            return;
        }
        let relaying = (target.class.is_symmetric()
            && self_class == NatClass::Natted(NatType::PortRestrictedCone))
            || self_class.is_symmetric();
        if relaying {
            // Lines 5–7: ship the whole shuffle through the RVP chain.
            let entries = self.wire_view(p, t);
            let sent = Self::sent_ids(&mut self.id_pool, &entries);
            let msg = NylonMsg::Request {
                src: self.self_descriptor(p),
                dest: t,
                via: p,
                hops: 0,
                entries,
            };
            if self.route_and_send(p, t, msg) {
                self.note_pending_sent(p, t, sent);
                self.stats.relayed_requests += 1;
            } else {
                self.id_pool.release(sent);
                self.drop_unroutable(p, t);
            }
        } else {
            // Lines 8–12: reactive hole punching.
            let msg = NylonMsg::OpenHole { src: self.self_descriptor(p), dest: t, via: p, hops: 0 };
            if self.route_and_send(p, t, msg) {
                self.stats.hole_punches += 1;
                let deadline = self.sim.now() + self.cfg.punch_timeout;
                self.nodes[p.index()]
                    .pending_punch
                    .insert(t, Punch { deadline, attempts: 0, addr: target.addr });
                if !self_class.is_public() {
                    // Open our own hole towards the target (line 11–12); for
                    // symmetric targets the advertised endpoint is a
                    // sentinel the PING cannot reach, but the egress session
                    // it creates is what lets the PONG back in.
                    self.send_msg(p, target.addr, NylonMsg::Ping { from: p });
                }
            } else {
                self.drop_unroutable(p, t);
            }
        }
    }

    /// A natted view entry with no live route is unusable: drop it (the
    /// paper keeps views stale-free; Section 5 "no stale references").
    fn drop_unroutable(&mut self, p: PeerId, target: PeerId) {
        self.stats.routes_missing += 1;
        self.nodes[p.index()].view.remove(target);
    }

    fn on_deliver(&mut self, flight: InFlight<NylonMsg>) {
        let now = self.sim.now();
        let (to, from_ep, msg) = match self.net.deliver(now, flight) {
            Delivery::ToPeer { to, from_ep, payload } => (to, from_ep, payload),
            Delivery::Dropped { payload, .. } => {
                // The drop is counted by the fabric; the payload buffer
                // still goes back to the pool.
                self.recycle_msg(payload);
                return;
            }
        };
        self.on_msg(to, from_ep, msg);
    }

    /// Protocol handling of a delivered message (Figure 6's `on receive`),
    /// independent of the carriage substrate (simulated fabric or live
    /// transport).
    fn on_msg(&mut self, to: PeerId, from_ep: Endpoint, msg: NylonMsg) {
        match msg {
            NylonMsg::Request { src, dest, via, hops, entries } => {
                self.touch(to, via, from_ep);
                if dest != to {
                    // Lines 17–19: forward along the chain.
                    if hops >= self.cfg.max_forward_hops {
                        self.stats.forward_failures += 1;
                        self.entry_pool.release(entries);
                        return;
                    }
                    let msg = NylonMsg::Request {
                        src,
                        dest,
                        via: to,
                        hops: hops.saturating_add(1),
                        entries,
                    };
                    if self.route_and_send(to, dest, msg) {
                        self.stats.forwards += 1;
                    } else {
                        self.stats.forward_failures += 1;
                    }
                    return;
                }
                self.stats.requests_completed += 1;
                let relayed = via != src.id;
                if relayed {
                    self.stats.record_chain(hops);
                    // Reverse chain towards the initiator, as long as the
                    // observed path.
                    let via_ttl =
                        self.nodes[to.index()].routing.ttl_of(via).unwrap_or(SimDuration::ZERO);
                    self.nodes[to.index()].routing.update_next_rvp(
                        src.id,
                        via,
                        via_ttl,
                        hops.saturating_add(1),
                    );
                }
                // Lines 20–24: answer.
                let to_class = self.net.class_of(to);
                let resp_entries = self.wire_view(to, src.id);
                let resp_sent = Self::sent_ids(&mut self.id_pool, &resp_entries);
                let resp = NylonMsg::Response {
                    from: to,
                    dest: src.id,
                    via: to,
                    hops: 0,
                    entries: resp_entries,
                };
                if !relayed {
                    // The hole to the initiator is open: answer through it.
                    self.send_msg(to, from_ep, resp);
                } else {
                    let relay_resp = (src.class.is_symmetric() && !to_class.is_public())
                        || (to_class.is_symmetric() && !src.class.is_public());
                    let sent_ok = if relay_resp {
                        self.route_and_send(to, src.id, resp)
                    } else {
                        // Defensive fallback; per the traversal analysis a
                        // relayed request implies the relay_resp condition.
                        self.send_msg(to, src.addr, resp);
                        true
                    };
                    if !sent_ok {
                        self.stats.forward_failures += 1;
                    }
                }
                // Lines 25–26: merge and learn routes.
                self.merge_shuffle(to, src.id, &entries, &resp_sent);
                self.id_pool.release(resp_sent);
                self.entry_pool.release(entries);
            }
            NylonMsg::Response { from, dest, via, hops, entries } => {
                self.touch(to, via, from_ep);
                if dest != to {
                    // Lines 29–31 (forwarding the *received* payload; the
                    // paper's line 31 has a typo shipping the relay's own
                    // view).
                    if hops >= self.cfg.max_forward_hops {
                        self.stats.forward_failures += 1;
                        self.entry_pool.release(entries);
                        return;
                    }
                    let msg = NylonMsg::Response {
                        from,
                        dest,
                        via: to,
                        hops: hops.saturating_add(1),
                        entries,
                    };
                    if self.route_and_send(to, dest, msg) {
                        self.stats.forwards += 1;
                    } else {
                        self.stats.forward_failures += 1;
                    }
                    return;
                }
                self.stats.responses_completed += 1;
                if via != from {
                    let via_ttl =
                        self.nodes[to.index()].routing.ttl_of(via).unwrap_or(SimDuration::ZERO);
                    self.nodes[to.index()].routing.update_next_rvp(
                        from,
                        via,
                        via_ttl,
                        hops.saturating_add(1),
                    );
                }
                let sent = self.nodes[to.index()].pending_sent.remove(&from).unwrap_or_default();
                self.merge_shuffle(to, from, &entries, &sent);
                self.id_pool.release(sent);
                self.entry_pool.release(entries);
            }
            NylonMsg::OpenHole { src, dest, via, hops } => {
                self.touch(to, via, from_ep);
                if dest != to {
                    // Line 40: forward along the chain.
                    if hops >= self.cfg.max_forward_hops {
                        self.stats.forward_failures += 1;
                        return;
                    }
                    let msg =
                        NylonMsg::OpenHole { src, dest, via: to, hops: hops.saturating_add(1) };
                    if self.route_and_send(to, dest, msg) {
                        self.stats.forwards += 1;
                    } else {
                        self.stats.forward_failures += 1;
                    }
                    return;
                }
                // Lines 37–38: we are the punch target; PONG opens our hole
                // towards the initiator. Chain length sample for Figure 9.
                self.stats.record_chain(hops);
                self.stats.pongs_sent += 1;
                self.send_msg(to, src.addr, NylonMsg::Pong { from: to });
            }
            NylonMsg::Ping { from } => {
                // Lines 41–43.
                self.touch(to, from, from_ep);
                self.stats.pongs_sent += 1;
                self.send_msg(to, from_ep, NylonMsg::Pong { from: to });
            }
            NylonMsg::Pong { from } => {
                // Lines 44–46, restricted to punches we actually have
                // pending: a PING/OPEN_HOLE pair can produce two PONGs and
                // the unconditional REQUEST of the pseudocode would then
                // shuffle twice in one round.
                self.touch(to, from, from_ep);
                if let Some(punch) = self.nodes[to.index()].pending_punch.remove(&from) {
                    self.stats.punch_successes += 1;
                    if punch.attempts > 0 {
                        self.stats.punch_retry_wins += 1;
                    }
                    let entries = self.wire_view(to, from);
                    let sent = Self::sent_ids(&mut self.id_pool, &entries);
                    self.note_pending_sent(to, from, sent);
                    let msg = NylonMsg::Request {
                        src: self.self_descriptor(to),
                        dest: from,
                        via: to,
                        hops: 0,
                        entries,
                    };
                    self.send_msg(to, from_ep, msg);
                }
            }
        }
    }

    /// Figure 6 lines 25–26 / 33–34: merge the received view and install
    /// chain routes with the partner as RVP.
    fn merge_shuffle(
        &mut self,
        me: PeerId,
        partner: PeerId,
        entries: &[WireEntry],
        sent: &[PeerId],
    ) {
        // Reused scratch for the descriptor projection; routes install
        // straight off the wire entries. Neither path allocates in steady
        // state.
        let mut descriptors = std::mem::take(&mut self.scratch_descs);
        descriptors.clear();
        descriptors.extend(entries.iter().map(|e| e.descriptor));
        let node = &mut self.nodes[me.index()];
        node.view.merge_and_truncate(&descriptors, sent, self.cfg.merge, &mut node.rng);
        self.stats.routes_installed += node.routing.install_from_shuffle(
            partner,
            entries
                .iter()
                .filter(|e| e.descriptor.class.is_natted())
                .map(|e| (e.descriptor.id, e.ttl, e.hops)),
        );
        self.scratch_descs = descriptors;
    }
}

impl ShardWorker for NylonEngine {
    type Envelope = InFlight<NylonMsg>;

    fn run_tick(&mut self, boundary: SimTime, out: &mut [Vec<InFlight<NylonMsg>>]) {
        while let Some((_, ev)) = self.sim.step_before(boundary) {
            self.handle(ev);
        }
        self.sim.advance_to(boundary);
        self.shard.as_mut().expect("run_tick requires shard mode").drain_into(out);
    }

    fn absorb(&mut self, mut batch: Vec<InFlight<NylonMsg>>) {
        sort_tick_batch(&mut batch);
        for f in batch {
            let at = f.arrive_at;
            self.sim.schedule_at(at, Ev::Deliver(self.flights.insert(f)));
        }
    }

    fn envelope_bytes(envelope: &InFlight<NylonMsg>) -> u64 {
        envelope.wire_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_engine(publics: usize, rc: usize, prc: usize, sym: usize, seed: u64) -> NylonEngine {
        let mut eng = NylonEngine::new(NylonConfig::default(), NetConfig::default(), seed);
        for _ in 0..publics {
            eng.add_peer(NatClass::Public);
        }
        for _ in 0..rc {
            eng.add_peer(NatClass::Natted(NatType::RestrictedCone));
        }
        for _ in 0..prc {
            eng.add_peer(NatClass::Natted(NatType::PortRestrictedCone));
        }
        for _ in 0..sym {
            eng.add_peer(NatClass::Natted(NatType::Symmetric));
        }
        eng.bootstrap_random_public(8);
        eng.start();
        eng
    }

    #[test]
    fn views_fill_and_shuffles_complete() {
        let mut eng = mixed_engine(10, 20, 15, 5, 1);
        eng.run_rounds(40);
        for p in eng.alive_peers().collect::<Vec<_>>() {
            assert!(!eng.view_of(p).is_empty(), "empty view at {p}");
        }
        let s = eng.stats();
        assert!(s.requests_completed > 0);
        assert!(s.responses_completed > 0);
        assert!(s.hole_punches > 0, "natted targets must trigger punches");
        assert!(s.punch_successes > 0);
    }

    #[test]
    fn natted_peers_get_sampled() {
        let mut eng = mixed_engine(10, 20, 15, 5, 2);
        eng.run_rounds(60);
        let natted_refs: usize = eng
            .alive_peers()
            .collect::<Vec<_>>()
            .iter()
            .map(|p| eng.view_of(*p).iter().filter(|d| d.class.is_natted()).count())
            .sum();
        let total_refs: usize =
            eng.alive_peers().collect::<Vec<_>>().iter().map(|p| eng.view_of(*p).len()).sum();
        // 80 % of peers are natted; their share of references must be
        // substantial (the whole point of Nylon vs Figure 4's baseline).
        let ratio = natted_refs as f64 / total_refs as f64;
        assert!(ratio > 0.5, "natted reference ratio {ratio:.2} too low");
    }

    #[test]
    fn chains_are_short() {
        let mut eng = mixed_engine(5, 25, 15, 5, 3);
        eng.run_rounds(60);
        let mean = eng.stats().mean_chain_len().expect("chains must be observed");
        assert!(mean >= 1.0, "chain length below 1: {mean}");
        assert!(mean < 6.0, "chains unexpectedly long: {mean}");
    }

    #[test]
    fn relaying_used_for_symmetric_combinations() {
        // Lots of SYM peers force relayed shuffles.
        let mut eng = mixed_engine(5, 0, 10, 25, 4);
        eng.run_rounds(50);
        assert!(eng.stats().relayed_requests > 0, "SYM initiators must relay");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut eng = mixed_engine(10, 15, 10, 5, seed);
            eng.run_rounds(30);
            (eng.stats(), eng.net().drop_counters())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn survives_total_churn_of_half_the_network() {
        let mut eng = mixed_engine(10, 20, 15, 5, 5);
        eng.run_rounds(30);
        let alive: Vec<PeerId> = eng.alive_peers().collect();
        eng.kill_peers(&alive[..25]);
        eng.run_rounds(30);
        // Survivors keep shuffling successfully.
        let before = eng.stats().requests_completed;
        eng.run_rounds(10);
        assert!(eng.stats().requests_completed > before, "gossip stalled after churn");
    }

    #[test]
    fn hundred_percent_nat_bootstrap_works() {
        let mut eng = NylonEngine::new(NylonConfig::default(), NetConfig::default(), 6);
        for _ in 0..25 {
            eng.add_peer(NatClass::Natted(NatType::RestrictedCone));
        }
        for _ in 0..20 {
            eng.add_peer(NatClass::Natted(NatType::PortRestrictedCone));
        }
        for _ in 0..5 {
            eng.add_peer(NatClass::Natted(NatType::Symmetric));
        }
        eng.bootstrap_random_public(8); // falls back to pre-opened holes
        eng.start();
        eng.run_rounds(40);
        assert!(eng.stats().requests_completed > 0, "no shuffle completed at 100% NAT");
        let nonempty = eng.alive_peers().filter(|p| !eng.view_of(*p).is_empty()).count();
        assert_eq!(nonempty, 50);
    }

    #[test]
    fn join_after_start_gets_integrated() {
        let mut eng = mixed_engine(10, 15, 10, 5, 7);
        eng.run_rounds(15);
        let contact = eng.alive_peers().next().unwrap();
        let newbie =
            eng.add_peer_with_bootstrap(NatClass::Natted(NatType::PortRestrictedCone), &[contact]);
        eng.run_rounds(30);
        assert!(!eng.view_of(newbie).is_empty());
        let known = eng
            .alive_peers()
            .collect::<Vec<_>>()
            .iter()
            .filter(|p| eng.view_of(**p).contains(newbie))
            .count();
        assert!(known > 0, "joining natted peer never advertised");
    }

    #[test]
    fn routing_tables_stay_bounded() {
        let mut eng = mixed_engine(10, 20, 15, 5, 8);
        eng.run_rounds(80);
        // TTL purging bounds the table: at most hole_timeout/period rounds
        // of view-size insertions.
        let bound = (90 / 5 + 1) * (15 + 1) * 2;
        for p in eng.alive_peers().collect::<Vec<_>>() {
            let len = eng.routing_of(p).len();
            assert!(len <= bound, "routing table of {p} grew to {len}");
        }
    }

    #[test]
    fn pure_public_population_never_punches() {
        let mut eng = mixed_engine(30, 0, 0, 0, 11);
        eng.run_rounds(20);
        let s = eng.stats();
        assert_eq!(s.hole_punches, 0);
        assert_eq!(s.relayed_requests, 0);
        assert!(s.direct_requests > 0);
    }

    #[test]
    #[should_panic(expected = "HOLE_TIMEOUT")]
    fn mismatched_hole_timeout_panics() {
        let cfg =
            NylonConfig { hole_timeout: SimDuration::from_secs(30), ..NylonConfig::default() };
        let _ = NylonEngine::new(cfg, NetConfig::default(), 1);
    }

    #[test]
    fn punches_toward_dead_targets_time_out() {
        let mut eng = mixed_engine(10, 25, 10, 5, 21);
        eng.run_rounds(20);
        // Kill all natted peers: pending punches towards them can never
        // complete, and the punch-timeout path must reclaim them.
        let victims: Vec<PeerId> =
            eng.alive_peers().filter(|p| eng.net().class_of(*p).is_natted()).collect();
        eng.kill_peers(&victims);
        eng.run_rounds(20);
        let s = eng.stats();
        assert!(s.punch_timeouts > 0, "dead targets must produce punch timeouts");
        // No pending state leaks: punches either succeeded or timed out.
        for p in eng.alive_peers().collect::<Vec<_>>() {
            assert!(
                eng.nodes[p.index()].pending_punch.len() <= 1,
                "pending punches not reclaimed at {p}"
            );
        }
    }

    #[test]
    fn unroutable_targets_are_dropped_from_views() {
        let mut eng = mixed_engine(10, 25, 10, 5, 23);
        eng.run_rounds(30);
        // Killing most of the network leaves survivors with natted view
        // entries whose routes expire; shuffling towards them must drop
        // the entries and count the lost rounds.
        let alive: Vec<PeerId> = eng.alive_peers().collect();
        eng.kill_peers(&alive[..40]);
        eng.run_rounds(40);
        assert!(
            eng.stats().routes_missing > 0,
            "route expiry must surface as dropped view entries"
        );
        assert!(eng.stats().requests_completed > 0);
    }

    #[test]
    fn sample_log_records_only_when_enabled() {
        let mut eng = mixed_engine(10, 10, 5, 0, 25);
        eng.run_rounds(5);
        assert!(eng.sample_log().is_none());
        eng.enable_sample_log();
        eng.run_rounds(5);
        let len = eng.sample_log().map(|l| l.len()).unwrap_or(0);
        assert!(len > 0, "enabled log must record selections");
        // Logged ids are valid peers.
        for id in eng.sample_log().unwrap() {
            assert!((*id as usize) < eng.net().peer_count());
        }
    }

    #[test]
    fn relays_forward_for_third_parties() {
        // With many SYM peers, relayed REQUESTs traverse intermediate
        // peers, which must account forwards.
        let mut eng = mixed_engine(6, 0, 0, 34, 27);
        eng.run_rounds(50);
        let s = eng.stats();
        assert!(s.forwards > 0, "RVP duty must be exercised");
        assert!(s.relayed_requests > 0);
    }

    #[test]
    fn views_never_contain_dead_entries_forever() {
        let mut eng = mixed_engine(10, 20, 10, 0, 29);
        eng.run_rounds(30);
        let victims: Vec<PeerId> = eng.alive_peers().take(20).collect();
        eng.kill_peers(&victims);
        // Healer aging pushes dead entries out within ~view_size rounds of
        // fresh inflow.
        eng.run_rounds(60);
        let dead_refs: usize = eng
            .alive_peers()
            .collect::<Vec<_>>()
            .iter()
            .map(|p| eng.view_of(*p).iter().filter(|d| !eng.net().is_alive(d.id)).count())
            .sum();
        let total_refs: usize =
            eng.alive_peers().collect::<Vec<_>>().iter().map(|p| eng.view_of(*p).len()).sum();
        let ratio = dead_refs as f64 / total_refs.max(1) as f64;
        assert!(ratio < 0.2, "dead references linger: {ratio:.2}");
    }

    #[test]
    fn flight_slab_recycles_slots() {
        // Punches, relays and shuffles all park flights in the slab; its
        // slot count must track the in-flight high-water mark, not the
        // total message count.
        let mut eng = mixed_engine(10, 15, 10, 5, 35);
        eng.run_rounds(20);
        let high = eng.flights.slot_count();
        assert!(high > 0, "warm-up must have scheduled deliveries");
        eng.run_rounds(1_000);
        assert!(
            eng.flights.slot_count() <= high * 2 + 8,
            "flight slab grew from {high} to {} slots over 1k rounds",
            eng.flights.slot_count()
        );
    }

    #[test]
    fn no_message_storms() {
        // The per-peer message rate must stay within a small constant of
        // the shuffle rate: 1 request + 1 response + punch traffic + relay
        // duty. A routing loop would blow this up.
        let mut eng = mixed_engine(10, 20, 15, 5, 31);
        eng.run_rounds(60);
        let alive = eng.alive_peers().count() as f64;
        let msgs: u64 = eng
            .alive_peers()
            .collect::<Vec<_>>()
            .iter()
            .map(|p| eng.net().stats_of(*p).msgs_sent)
            .sum();
        let per_peer_per_round = msgs as f64 / alive / 60.0;
        assert!(
            per_peer_per_round < 8.0,
            "message amplification too high: {per_peer_per_round:.1} msgs/peer/round"
        );
    }
}
