//! The Nylon routing table: rendez-vous peers (RVPs) with TTLs.
//!
//! Every peer maintains, for each natted peer it knows of, the *next RVP* to
//! use when sending to it — the peer it shuffled with to obtain the
//! reference (Figure 5 of the paper). A route whose RVP is the destination
//! itself is *direct*: a live NAT hole exists. Each entry carries a TTL
//! equal to the minimum remaining lifetime of the NAT holes along the whole
//! chain (the 120/140/170 example of Figure 5); TTLs decrease every shuffle
//! period and entries are purged on expiry
//! (`decrease_routing_table_ttls`, Figure 6 line 14).

use nylon_net::{Endpoint, PeerId};
use nylon_sim::{FxHashMap, SimDuration};

/// One routing entry: the next RVP towards a destination, the remaining
/// lifetime of the chain, and the estimated chain length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Next hop; equal to the destination itself for direct routes.
    pub rvp: PeerId,
    /// Remaining validity; the entry is purged when this reaches zero.
    pub ttl: SimDuration,
    /// Estimated number of physical hops to the destination (1 = direct).
    /// This is the distance-vector metric that keeps chains short and
    /// suppresses routing cycles: information traversing a cycle grows its
    /// hop count and loses to fresher, shorter routes.
    pub hops: u8,
}

/// Routes estimated longer than this are not installed (RIP-style
/// infinity; honest Nylon chains average below 4).
pub const MAX_ROUTE_HOPS: u8 = 16;

/// The routing table of one Nylon peer.
///
/// TTLs are stored as absolute expiry offsets against an age accumulator,
/// so [`RoutingTable::decrease_ttls`] — called once per peer per shuffle
/// round — is O(1) bookkeeping instead of a full-table subtract-and-purge
/// sweep (the sweep still runs, but only every [`SWEEP_EVERY`] of
/// accumulated age, purely to bound memory). Every read filters expired
/// entries, so the observable behaviour is identical to eager purging.
///
/// ```
/// use nylon::routing::RoutingTable;
/// use nylon_net::PeerId;
/// use nylon_sim::SimDuration;
///
/// let mut rt = RoutingTable::new(PeerId(0));
/// // A shuffle with p1 makes p1 directly reachable...
/// rt.update_direct(PeerId(1), SimDuration::from_secs(90));
/// // ...and p1 handed us a reference to p9, becoming our RVP for it.
/// rt.update_next_rvp(PeerId(9), PeerId(1), SimDuration::from_secs(60), 2);
/// assert_eq!(rt.next_rvp(PeerId(9)), Some(PeerId(1)));
/// assert!(rt.is_direct(PeerId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTable {
    owner: PeerId,
    entries: FxHashMap<PeerId, Stored>,
    /// Accumulated virtual age (total of all `decrease_ttls` calls).
    age: SimDuration,
    /// Age at which the next compaction sweep runs.
    next_sweep: SimDuration,
}

/// How much age accumulates between compaction sweeps. Expired entries
/// are invisible to every accessor the moment they expire; the sweep only
/// reclaims their memory, so the interval must merely keep the table
/// bounded — one hole-timeout of stale slack at most doubles the live
/// set, and halving the sweep frequency measurably cheapens the per-round
/// path (the sweep walks the whole map).
const SWEEP_EVERY: SimDuration = SimDuration::from_secs(90);

/// Internal entry: expiry measured on the age axis.
#[derive(Debug, Clone, Copy)]
struct Stored {
    rvp: PeerId,
    expires: SimDuration,
    hops: u8,
    /// Last observed (post-NAT) endpoint of `dest`, recorded alongside
    /// direct routes: replies travel back through the hole it names. Only
    /// meaningful while the route is direct — exactly the lifetime the
    /// engines need, which is why the endpoint lives here instead of in a
    /// second per-node hash map paying a second lookup per receive.
    contact: Option<Endpoint>,
}

impl Stored {
    /// Remaining TTL at age `age`; zero means expired.
    fn ttl_at(&self, age: SimDuration) -> SimDuration {
        self.expires.saturating_sub(age)
    }
}

impl RoutingTable {
    /// An empty table owned by `owner`.
    pub fn new(owner: PeerId) -> Self {
        RoutingTable {
            owner,
            entries: FxHashMap::default(),
            age: SimDuration::ZERO,
            next_sweep: SWEEP_EVERY,
        }
    }

    /// The owning peer.
    pub fn owner(&self) -> PeerId {
        self.owner
    }

    /// The live entry towards `dest`, filtering expired-but-unswept ones.
    fn live(&self, dest: PeerId) -> Option<&Stored> {
        self.entries.get(&dest).filter(|e| !e.ttl_at(self.age).is_zero())
    }

    /// Number of live entries. O(table size): expired entries awaiting the
    /// next compaction sweep are excluded.
    pub fn len(&self) -> usize {
        self.entries.values().filter(|e| !e.ttl_at(self.age).is_zero()).count()
    }

    /// `true` if no live routes are known.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The next RVP towards `dest` (`Some(dest)` itself when direct), or
    /// `None` when no live route exists (Figure 6 `next_RVP()`).
    pub fn next_rvp(&self, dest: PeerId) -> Option<PeerId> {
        self.live(dest).map(|e| e.rvp)
    }

    /// `true` if a live direct route (open NAT hole) to `dest` exists.
    pub fn is_direct(&self, dest: PeerId) -> bool {
        self.live(dest).is_some_and(|e| e.rvp == dest)
    }

    /// Remaining TTL of the route towards `dest`.
    pub fn ttl_of(&self, dest: PeerId) -> Option<SimDuration> {
        self.live(dest).map(|e| e.ttl_at(self.age))
    }

    /// The full route entry towards `dest`.
    pub fn entry_of(&self, dest: PeerId) -> Option<RouteEntry> {
        self.live(dest).map(|e| RouteEntry { rvp: e.rvp, ttl: e.ttl_at(self.age), hops: e.hops })
    }

    /// Installs or refreshes the *direct* route for `dest` (Figure 6
    /// `update_next_RVP(p, p, HOLE_TIMEOUT)`, run on every receive): the
    /// hole is provably open, so the route always wins and its TTL is never
    /// shortened.
    pub fn update_direct(&mut self, dest: PeerId, ttl: SimDuration) {
        self.touch_direct_inner(dest, ttl, None);
    }

    /// [`RoutingTable::update_direct`] plus the observed endpoint the
    /// datagram came from — the engines' per-receive `touch`, folded into
    /// one hash lookup.
    pub fn touch_direct(&mut self, dest: PeerId, ttl: SimDuration, observed: Endpoint) {
        self.touch_direct_inner(dest, ttl, Some(observed));
    }

    fn touch_direct_inner(&mut self, dest: PeerId, ttl: SimDuration, observed: Option<Endpoint>) {
        if dest == self.owner || ttl.is_zero() {
            return;
        }
        let expires = self.age + ttl;
        match self.entries.get_mut(&dest) {
            Some(e) => {
                let stale = e.ttl_at(self.age).is_zero();
                e.rvp = dest;
                e.hops = 1;
                // A stale (expired, unswept) entry must not donate its old
                // expiry (or contact endpoint); a live one keeps the larger
                // expiry and the freshest endpoint.
                e.expires = if stale { expires } else { e.expires.max(expires) };
                e.contact = if stale { observed } else { observed.or(e.contact) };
            }
            None => {
                self.entries
                    .insert(dest, Stored { rvp: dest, expires, hops: 1, contact: observed });
            }
        }
    }

    /// The last observed endpoint of `dest`, available exactly while a
    /// live *direct* route exists (replies through the hole it names).
    pub fn contact_of(&self, dest: PeerId) -> Option<Endpoint> {
        self.live(dest).filter(|e| e.rvp == dest).and_then(|e| e.contact)
    }

    /// Updates (or creates) the entry for `dest` (Figure 6
    /// `update_next_RVP()`). `hops` is the estimated chain length through
    /// `rvp`.
    ///
    /// Precedence rules keeping the table sound *and loop-free*:
    ///
    /// * a direct route (`rvp == dest`, `hops == 1`) always overwrites;
    /// * a chain route never downgrades a live direct route;
    /// * among chain routes, the shorter estimated chain wins; on equal
    ///   length the longer TTL wins; the same provider refreshes in place.
    ///
    /// Updates with zero TTL or more than [`MAX_ROUTE_HOPS`] hops are
    /// ignored.
    pub fn update_next_rvp(&mut self, dest: PeerId, rvp: PeerId, ttl: SimDuration, hops: u8) {
        if dest == self.owner || ttl.is_zero() || hops > MAX_ROUTE_HOPS {
            return;
        }
        if rvp == dest {
            self.update_direct(dest, ttl);
            return;
        }
        let age = self.age;
        let new = Stored { rvp, expires: age + ttl, hops: hops.max(2), contact: None };
        match self.entries.get_mut(&dest) {
            None => {
                self.entries.insert(dest, new);
            }
            Some(existing) if existing.ttl_at(age).is_zero() => {
                // Expired-but-unswept: behaves as absent.
                *existing = new;
            }
            Some(existing) => {
                if existing.rvp == dest {
                    // Keep the direct route.
                } else if existing.rvp == rvp {
                    // Same provider: take the fresher estimate.
                    existing.expires = existing.expires.max(new.expires);
                    existing.hops = new.hops;
                } else if new.hops < existing.hops
                    || (new.hops == existing.hops && new.ttl_at(age) > existing.ttl_at(age))
                {
                    *existing = new;
                }
            }
        }
    }

    /// Installs chain routes for descriptors received in a shuffle with
    /// `partner` (Figure 6 `update_routing_table()`): the partner becomes
    /// the RVP for every natted peer it handed us.
    ///
    /// Each received TTL is capped by the TTL of our own route to the
    /// partner — the chain cannot outlive its first hop (Figure 5's
    /// minimum-along-the-chain invariant) — and each received hop estimate
    /// grows by the partner's own distance.
    pub fn install_from_shuffle(
        &mut self,
        partner: PeerId,
        received: impl IntoIterator<Item = (PeerId, SimDuration, u8)>,
    ) -> u64 {
        let Some(partner_entry) = self.live(partner).copied() else { return 0 };
        let partner_ttl = partner_entry.ttl_at(self.age);
        let mut installed = 0;
        for (dest, ttl, hops) in received {
            if dest == self.owner || dest == partner {
                continue;
            }
            self.update_next_rvp(
                dest,
                partner,
                ttl.min(partner_ttl),
                hops.saturating_add(partner_entry.hops),
            );
            installed += 1;
        }
        installed
    }

    /// Decreases every TTL by `elapsed` (Figure 6
    /// `decrease_routing_table_ttls()`, line 14).
    ///
    /// O(1): advances the age accumulator; expired entries become
    /// invisible immediately and are compacted away every
    /// [`SWEEP_EVERY`] of accumulated age.
    ///
    /// Returns the number of expired entries compacted away (0 between
    /// sweeps — expiries are only *counted* when the sweep collects them).
    pub fn decrease_ttls(&mut self, elapsed: SimDuration) -> u64 {
        self.age += elapsed;
        if self.age >= self.next_sweep {
            let age = self.age;
            let before = self.entries.len();
            self.entries.retain(|_, e| !e.ttl_at(age).is_zero());
            self.next_sweep = age + SWEEP_EVERY;
            return (before - self.entries.len()) as u64;
        }
        0
    }

    /// Removes the entry for `dest`, if any (and live).
    pub fn remove(&mut self, dest: PeerId) -> Option<RouteEntry> {
        let age = self.age;
        self.entries.remove(&dest).filter(|e| !e.ttl_at(age).is_zero()).map(|e| RouteEntry {
            rvp: e.rvp,
            ttl: e.ttl_at(age),
            hops: e.hops,
        })
    }

    /// Resolves the chain towards `dest` down to a *directly reachable*
    /// first hop: follows `next_RVP` links within this table until hitting
    /// a direct route.
    ///
    /// Returns `None` if the chain is broken (a hop without a live route)
    /// or longer than `max_depth` (cycle guard). For a direct `dest`
    /// returns `dest` itself.
    pub fn resolve_first_hop(&self, dest: PeerId, max_depth: usize) -> Option<PeerId> {
        let mut hop = dest;
        for _ in 0..max_depth {
            let entry = self.live(hop)?;
            if entry.rvp == hop {
                return Some(hop);
            }
            hop = entry.rvp;
        }
        None
    }

    /// Iterates over live `(dest, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (PeerId, RouteEntry)> + '_ {
        self.entries
            .iter()
            .filter(|(_, e)| !e.ttl_at(self.age).is_zero())
            .map(|(d, e)| (*d, RouteEntry { rvp: e.rvp, ttl: e.ttl_at(self.age), hops: e.hops }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const S90: SimDuration = SimDuration::from_secs(90);
    const S60: SimDuration = SimDuration::from_secs(60);
    const S30: SimDuration = SimDuration::from_secs(30);

    fn rt() -> RoutingTable {
        RoutingTable::new(PeerId(0))
    }

    #[test]
    fn empty_table_has_no_routes() {
        let t = rt();
        assert!(t.is_empty());
        assert_eq!(t.next_rvp(PeerId(1)), None);
        assert!(!t.is_direct(PeerId(1)));
        assert_eq!(t.ttl_of(PeerId(1)), None);
        assert_eq!(t.entry_of(PeerId(1)), None);
    }

    #[test]
    fn direct_route_roundtrip() {
        let mut t = rt();
        t.update_direct(PeerId(1), S90);
        assert_eq!(t.next_rvp(PeerId(1)), Some(PeerId(1)));
        assert!(t.is_direct(PeerId(1)));
        assert_eq!(t.ttl_of(PeerId(1)), Some(S90));
        assert_eq!(t.entry_of(PeerId(1)).unwrap().hops, 1);
    }

    #[test]
    fn never_routes_to_self() {
        let mut t = rt();
        t.update_direct(PeerId(0), S90);
        t.update_next_rvp(PeerId(0), PeerId(1), S90, 2);
        assert!(t.is_empty());
    }

    #[test]
    fn zero_ttl_updates_ignored() {
        let mut t = rt();
        t.update_direct(PeerId(1), SimDuration::ZERO);
        t.update_next_rvp(PeerId(2), PeerId(1), SimDuration::ZERO, 2);
        assert!(t.is_empty());
    }

    #[test]
    fn overlong_routes_ignored() {
        let mut t = rt();
        t.update_next_rvp(PeerId(2), PeerId(1), S90, MAX_ROUTE_HOPS + 1);
        assert!(t.is_empty());
        t.update_next_rvp(PeerId(2), PeerId(1), S90, MAX_ROUTE_HOPS);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn chain_route_does_not_downgrade_direct() {
        let mut t = rt();
        t.update_direct(PeerId(9), S60);
        t.update_next_rvp(PeerId(9), PeerId(1), S90, 2);
        assert!(t.is_direct(PeerId(9)), "chain must not replace live direct route");
        assert_eq!(t.ttl_of(PeerId(9)), Some(S60));
    }

    #[test]
    fn direct_overwrites_chain() {
        let mut t = rt();
        t.update_next_rvp(PeerId(9), PeerId(1), S90, 2);
        t.update_direct(PeerId(9), S30);
        assert!(t.is_direct(PeerId(9)));
        // Direct refresh keeps the larger TTL.
        assert_eq!(t.ttl_of(PeerId(9)), Some(S90));
    }

    #[test]
    fn direct_refresh_never_shortens() {
        let mut t = rt();
        t.update_direct(PeerId(1), S90);
        t.update_direct(PeerId(1), S30);
        assert_eq!(t.ttl_of(PeerId(1)), Some(S90));
        t.update_direct(PeerId(1), S90 + S30);
        assert_eq!(t.ttl_of(PeerId(1)), Some(S90 + S30));
    }

    #[test]
    fn shorter_chain_wins() {
        let mut t = rt();
        t.update_next_rvp(PeerId(9), PeerId(1), S90, 4);
        t.update_next_rvp(PeerId(9), PeerId(2), S30, 2);
        assert_eq!(t.next_rvp(PeerId(9)), Some(PeerId(2)), "shorter chain must win");
        t.update_next_rvp(PeerId(9), PeerId(3), S90, 3);
        assert_eq!(t.next_rvp(PeerId(9)), Some(PeerId(2)), "longer chain must not win");
    }

    #[test]
    fn equal_length_longer_ttl_wins() {
        let mut t = rt();
        t.update_next_rvp(PeerId(9), PeerId(1), S30, 2);
        t.update_next_rvp(PeerId(9), PeerId(2), S60, 2);
        assert_eq!(t.next_rvp(PeerId(9)), Some(PeerId(2)));
        t.update_next_rvp(PeerId(9), PeerId(3), S30, 2);
        assert_eq!(t.next_rvp(PeerId(9)), Some(PeerId(2)));
    }

    #[test]
    fn same_provider_refreshes_in_place() {
        let mut t = rt();
        t.update_next_rvp(PeerId(9), PeerId(1), S30, 2);
        t.update_next_rvp(PeerId(9), PeerId(1), S60, 3);
        let e = t.entry_of(PeerId(9)).unwrap();
        assert_eq!(e.ttl, S60);
        assert_eq!(e.hops, 3, "same provider updates the estimate");
    }

    #[test]
    fn chain_hops_floor_is_two() {
        let mut t = rt();
        t.update_next_rvp(PeerId(9), PeerId(1), S30, 0);
        assert_eq!(t.entry_of(PeerId(9)).unwrap().hops, 2);
    }

    #[test]
    fn install_from_shuffle_caps_ttl_and_grows_hops() {
        let mut t = rt();
        t.update_direct(PeerId(1), S60); // hole to partner: 60 s, 1 hop
        t.install_from_shuffle(PeerId(1), [(PeerId(9), S90, 1), (PeerId(8), S30, 3)]);
        assert_eq!(t.next_rvp(PeerId(9)), Some(PeerId(1)));
        assert_eq!(t.ttl_of(PeerId(9)), Some(S60), "chain TTL capped by first hop");
        assert_eq!(t.entry_of(PeerId(9)).unwrap().hops, 2, "1 (partner) + 1 (received)");
        assert_eq!(t.ttl_of(PeerId(8)), Some(S30), "smaller received TTL kept");
        assert_eq!(t.entry_of(PeerId(8)).unwrap().hops, 4);
    }

    #[test]
    fn install_from_shuffle_without_partner_route_is_noop() {
        let mut t = rt();
        t.install_from_shuffle(PeerId(1), [(PeerId(9), S90, 1)]);
        assert!(t.is_empty());
    }

    #[test]
    fn install_skips_self_and_partner() {
        let mut t = rt();
        t.update_direct(PeerId(1), S90);
        t.install_from_shuffle(PeerId(1), [(PeerId(0), S90, 1), (PeerId(1), S30, 1)]);
        assert_eq!(t.len(), 1, "only the direct partner route remains");
        assert!(t.is_direct(PeerId(1)));
        assert_eq!(t.ttl_of(PeerId(1)), Some(S90), "partner entry untouched");
    }

    #[test]
    fn decrease_ttls_purges_expired() {
        let mut t = rt();
        t.update_direct(PeerId(1), S60);
        t.update_next_rvp(PeerId(2), PeerId(1), S30, 2);
        t.decrease_ttls(S30);
        assert_eq!(t.ttl_of(PeerId(1)), Some(S30));
        assert_eq!(t.ttl_of(PeerId(2)), None, "expired entry must be purged");
        t.decrease_ttls(S30);
        assert!(t.is_empty());
    }

    #[test]
    fn resolve_first_hop_follows_chain() {
        let mut t = rt();
        t.update_direct(PeerId(1), S90);
        t.update_next_rvp(PeerId(2), PeerId(1), S60, 2);
        t.update_next_rvp(PeerId(3), PeerId(2), S30, 3);
        assert_eq!(t.resolve_first_hop(PeerId(1), 8), Some(PeerId(1)));
        assert_eq!(t.resolve_first_hop(PeerId(2), 8), Some(PeerId(1)));
        assert_eq!(t.resolve_first_hop(PeerId(3), 8), Some(PeerId(1)));
    }

    #[test]
    fn resolve_first_hop_detects_breaks_and_cycles() {
        let mut t = rt();
        t.update_next_rvp(PeerId(3), PeerId(2), S30, 2);
        assert_eq!(t.resolve_first_hop(PeerId(3), 8), None, "broken chain");
        // Cycle: 4 -> 5 -> 4.
        t.update_next_rvp(PeerId(4), PeerId(5), S30, 2);
        t.update_next_rvp(PeerId(5), PeerId(4), S30, 2);
        assert_eq!(t.resolve_first_hop(PeerId(4), 8), None, "cycle must hit depth guard");
    }

    #[test]
    fn remove_and_iter() {
        let mut t = rt();
        t.update_direct(PeerId(1), S90);
        t.update_next_rvp(PeerId(2), PeerId(1), S60, 2);
        let collected: Vec<(PeerId, RouteEntry)> = t.iter().collect();
        assert_eq!(collected.len(), 2);
        let removed = t.remove(PeerId(1)).unwrap();
        assert_eq!(removed.rvp, PeerId(1));
        assert_eq!(t.len(), 1);
        assert!(t.remove(PeerId(1)).is_none());
    }

    proptest! {
        /// Chain TTLs never exceed the first-hop TTL at install time, hop
        /// estimates always exceed the partner's, and decrease_ttls keeps
        /// every remaining TTL positive.
        #[test]
        fn prop_ttl_invariants(
            partner_ttl_s in 1u64..200,
            recv in proptest::collection::vec((2u32..40, 1u64..200, 0u8..8), 0..30),
            dec_s in 1u64..100,
        ) {
            let mut t = RoutingTable::new(PeerId(0));
            let partner = PeerId(1);
            let pttl = SimDuration::from_secs(partner_ttl_s);
            t.update_direct(partner, pttl);
            t.install_from_shuffle(
                partner,
                recv.iter().map(|(id, s, h)| (PeerId(*id), SimDuration::from_secs(*s), *h)),
            );
            for (dest, e) in t.iter() {
                if dest != partner {
                    prop_assert!(e.ttl <= pttl, "chain TTL exceeds first hop");
                    prop_assert!(e.hops >= 2, "chain hop estimate below 2");
                }
            }
            t.decrease_ttls(SimDuration::from_secs(dec_s));
            for (_, e) in t.iter() {
                prop_assert!(!e.ttl.is_zero());
            }
        }

        /// resolve_first_hop never loops forever and, when it returns a
        /// hop, that hop is direct.
        #[test]
        fn prop_resolve_terminates(
            links in proptest::collection::vec((1u32..20, 1u32..20), 0..40),
        ) {
            let mut t = RoutingTable::new(PeerId(0));
            for (dest, rvp) in &links {
                t.update_next_rvp(PeerId(*dest), PeerId(*rvp), SimDuration::from_secs(30), 2);
            }
            for d in 1u32..20 {
                if let Some(hop) = t.resolve_first_hop(PeerId(d), 32) {
                    prop_assert!(t.is_direct(hop), "resolved hop must be direct");
                }
            }
        }
    }
}
