//! The Nylon routing table: rendez-vous peers (RVPs) with TTLs.
//!
//! Every peer maintains, for each natted peer it knows of, the *next RVP* to
//! use when sending to it — the peer it shuffled with to obtain the
//! reference (Figure 5 of the paper). A route whose RVP is the destination
//! itself is *direct*: a live NAT hole exists. Each entry carries a TTL
//! equal to the minimum remaining lifetime of the NAT holes along the whole
//! chain (the 120/140/170 example of Figure 5); TTLs decrease every shuffle
//! period and entries are purged on expiry
//! (`decrease_routing_table_ttls`, Figure 6 line 14).
//!
//! # Storage: `RouteMap`
//!
//! This is the protocol's hottest data structure — `install_from_shuffle`
//! runs for every descriptor of every shuffle and `entry_of`/`touch_direct`
//! on every receive — so it is backed by a purpose-built open-addressed
//! structure-of-arrays table rather than a generic hash map:
//!
//! * a dense `u32` key lane (16 keys per cache line) probed linearly from
//!   an fxhash-derived start, separate from the cold
//!   `{rvp, hops, contact}` and `expires` payload lanes;
//! * power-of-two capacity, ≤ 3/4 load factor, backward-shift deletion
//!   (no tombstones, so chains never rot and the table compacts in place
//!   without rehashing);
//! * batch installs reserve once per shuffle, so a whole descriptor run
//!   pays a single occupancy/growth check.
//!
//! Expiry bookkeeping is an age accumulator plus a *lower bound on the
//! earliest expiry*: entries expire passively (every accessor filters by
//! `expires > age`, one extra lane load on a confirmed hit) and
//! [`RoutingTable::decrease_ttls`] purges them in an amortized sweep of
//! the contiguous expiry lane every `SWEEP_EVERY` (90 s) of accumulated
//! age —
//! skipped entirely (no walk at all) when the earliest-expiry bound
//! proves nothing has lapsed. The bound also gives [`RoutingTable::len`]
//! an O(1) fast path: while it exceeds the age, the stored occupancy *is*
//! the live count. Observable behavior is identical to the retained
//! hash-map implementation (proven by the differential proptest at the
//! bottom of this file, which also compares the sweeps' purge counts).

use nylon_net::{DenseKey, Endpoint, PeerId};
use nylon_sim::SimDuration;

/// One routing entry: the next RVP towards a destination, the remaining
/// lifetime of the chain, and the estimated chain length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Next hop; equal to the destination itself for direct routes.
    pub rvp: PeerId,
    /// Remaining validity; the entry is purged when this reaches zero.
    pub ttl: SimDuration,
    /// Estimated number of physical hops to the destination (1 = direct).
    /// This is the distance-vector metric that keeps chains short and
    /// suppresses routing cycles: information traversing a cycle grows its
    /// hop count and loses to fresher, shorter routes.
    pub hops: u8,
}

/// Routes estimated longer than this are not installed (RIP-style
/// infinity; honest Nylon chains average below 4).
pub const MAX_ROUTE_HOPS: u8 = 16;

/// Accumulated age between expired-entry sweeps: expiry is already
/// enforced passively by the read-path filters, so the sweep only bounds
/// memory and can run rarely.
const SWEEP_EVERY: SimDuration = SimDuration::from_secs(90);

/// Cold per-entry payload (everything a probe does not need).
#[derive(Debug, Clone, Copy)]
struct Meta {
    rvp: PeerId,
    hops: u8,
    /// Last observed (post-NAT) endpoint of the destination, recorded
    /// alongside direct routes: replies travel back through the hole it
    /// names. Only meaningful while the route is direct — exactly the
    /// lifetime the engines need, which is why the endpoint lives here
    /// instead of in a second per-node map paying a second lookup per
    /// receive.
    contact: Option<Endpoint>,
}

const VACANT_META: Meta = Meta { rvp: PeerId(u32::MAX), hops: 0, contact: None };

/// Probe outcome: the slot holding the key, or the empty slot where it
/// would be inserted.
enum Slot {
    Occupied(usize),
    Vacant(usize),
}

/// The open-addressed SoA storage. Key lane is the occupancy authority
/// ([`DenseKey::EMPTY`] marks vacant slots); payload lanes at vacant slots
/// hold stale values and are never read.
#[derive(Debug, Clone, Default)]
struct RouteMap {
    keys: Vec<PeerId>,
    expires: Vec<SimDuration>,
    meta: Vec<Meta>,
    len: usize,
    /// `capacity - 1`; meaningless while `keys` is empty.
    mask: usize,
}

impl RouteMap {
    #[inline]
    fn slot_of(key: PeerId, mask: usize) -> usize {
        let h = key.hash_u64();
        (h ^ (h >> 32)) as usize & mask
    }

    /// Slot index of `key`, or `None`.
    #[inline]
    fn find(&self, key: PeerId) -> Option<usize> {
        if self.keys.is_empty() {
            return None;
        }
        let mut i = Self::slot_of(key, self.mask);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == PeerId::EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Probes for `key` assuming capacity for one more insert was already
    /// reserved (callers go through [`RouteMap::reserve`]).
    #[inline]
    fn probe(&self, key: PeerId) -> Slot {
        let mut i = Self::slot_of(key, self.mask);
        loop {
            let k = self.keys[i];
            if k == key {
                return Slot::Occupied(i);
            }
            if k == PeerId::EMPTY {
                return Slot::Vacant(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Fills the vacant slot `i` (as returned by [`RouteMap::probe`]).
    #[inline]
    fn commit(&mut self, i: usize, key: PeerId, expires: SimDuration, meta: Meta) {
        debug_assert!(self.len < self.keys.len(), "RouteMap overfilled: reserve() not honored");
        self.keys[i] = key;
        self.expires[i] = expires;
        self.meta[i] = meta;
        self.len += 1;
    }

    /// Ensures capacity for `additional` more entries with at most one
    /// growth — the per-batch occupancy check for shuffle installs.
    fn reserve(&mut self, additional: usize) {
        let needed = self.len + additional;
        // Load factor ≤ 3/4 keeps linear-probe chains short.
        if needed * 4 > self.keys.len() * 3 {
            let mut cap = self.keys.len().max(8);
            while needed * 4 > cap * 3 {
                cap *= 2;
            }
            self.grow(cap);
        }
    }

    fn grow(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two());
        let old_keys = std::mem::replace(&mut self.keys, vec![PeerId::EMPTY; cap]);
        let old_expires = std::mem::replace(&mut self.expires, vec![SimDuration::ZERO; cap]);
        let old_meta = std::mem::replace(&mut self.meta, vec![VACANT_META; cap]);
        self.mask = cap - 1;
        for (pos, key) in old_keys.into_iter().enumerate() {
            if key == PeerId::EMPTY {
                continue;
            }
            let mut i = Self::slot_of(key, self.mask);
            while self.keys[i] != PeerId::EMPTY {
                i = (i + 1) & self.mask;
            }
            self.keys[i] = key;
            self.expires[i] = old_expires[pos];
            self.meta[i] = old_meta[pos];
        }
    }

    /// Vacates slot `i`, backward-shifting the probe chain behind it so no
    /// tombstone is left (the table compacts in place, never rehashes).
    fn remove_at(&mut self, mut i: usize) {
        self.keys[i] = PeerId::EMPTY;
        self.len -= 1;
        let mask = self.mask;
        let mut j = (i + 1) & mask;
        while self.keys[j] != PeerId::EMPTY {
            let home = Self::slot_of(self.keys[j], mask);
            // keys[j] may move into the hole at i only if its home slot is
            // not inside the cyclic interval (i, j].
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                self.keys[i] = self.keys[j];
                self.expires[i] = self.expires[j];
                self.meta[i] = self.meta[j];
                self.keys[j] = PeerId::EMPTY;
                i = j;
            }
            j = (j + 1) & mask;
        }
    }

    /// Purges every entry with `expires <= age`, walking the contiguous
    /// expiry lane. Returns the purge count and the exact new minimum
    /// expiry among survivors.
    fn sweep_expired(&mut self, age: SimDuration) -> (u64, Option<SimDuration>) {
        let cap = self.keys.len();
        let mut purged = 0u64;
        let mut min: Option<SimDuration> = None;
        let mut i = 0;
        // Single fused pass: purge and recompute the survivor minimum
        // together. Backward-shift deletion only relocates not-yet-visited
        // entries into `[i, cap)` (a hole wraps below `i` only once the
        // probe walk itself has wrapped), so no entry escapes the scan;
        // already-visited survivors that wrap forward are merely min'd
        // twice, which is idempotent.
        while i < cap {
            if self.keys[i] != PeerId::EMPTY {
                let e = self.expires[i];
                if e <= age {
                    self.remove_at(i);
                    purged += 1;
                    // The shift may have moved a later entry into slot i.
                    continue;
                }
                min = Some(min.map_or(e, |m| m.min(e)));
            }
            i += 1;
        }
        (purged, min)
    }
}

/// The routing table of one Nylon peer, backed by [`RouteMap`] (see the
/// module docs for the storage design).
///
/// TTLs are stored as absolute expiry offsets against an age accumulator:
/// entries expire passively (every accessor filters by `expires > age`)
/// and [`RoutingTable::decrease_ttls`] — called once per peer per shuffle
/// round — is O(1) bookkeeping outside the amortized `SWEEP_EVERY` purge,
/// which itself is skipped without a walk when the tracked earliest-expiry
/// bound proves no entry has lapsed.
///
/// ```
/// use nylon::routing::RoutingTable;
/// use nylon_net::PeerId;
/// use nylon_sim::SimDuration;
///
/// let mut rt = RoutingTable::new(PeerId(0));
/// // A shuffle with p1 makes p1 directly reachable...
/// rt.update_direct(PeerId(1), SimDuration::from_secs(90));
/// // ...and p1 handed us a reference to p9, becoming our RVP for it.
/// rt.update_next_rvp(PeerId(9), PeerId(1), SimDuration::from_secs(60), 2);
/// assert_eq!(rt.next_rvp(PeerId(9)), Some(PeerId(1)));
/// assert!(rt.is_direct(PeerId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTable {
    owner: PeerId,
    map: RouteMap,
    /// Accumulated virtual age (total of all `decrease_ttls` calls).
    age: SimDuration,
    /// Age at which the next amortized purge sweep runs.
    next_sweep: SimDuration,
    /// Lower bound on the earliest `expires` among stored entries; `None`
    /// when the table is empty. Kept as a bound, not an exact minimum —
    /// refreshes that extend an entry leave it stale-low, costing at worst
    /// one sweep walk that purges nothing. While the bound exceeds the
    /// age, *every stored entry is provably live*, which is the O(1) fast
    /// path of [`RoutingTable::len`] and the no-walk skip of the sweep.
    min_expires: Option<SimDuration>,
}

impl RoutingTable {
    /// An empty table owned by `owner`.
    pub fn new(owner: PeerId) -> Self {
        RoutingTable {
            owner,
            map: RouteMap::default(),
            age: SimDuration::ZERO,
            next_sweep: SWEEP_EVERY,
            min_expires: None,
        }
    }

    /// The owning peer.
    pub fn owner(&self) -> PeerId {
        self.owner
    }

    /// Lowers the earliest-expiry bound to cover a newly written expiry.
    #[inline]
    fn note_expiry(&mut self, expires: SimDuration) {
        self.min_expires = Some(self.min_expires.map_or(expires, |m| m.min(expires)));
    }

    /// Slot of `dest` if present *and live*: the key-lane probe plus one
    /// expiry-lane load — the filter every accessor shares.
    #[inline]
    fn find_live(&self, dest: PeerId) -> Option<usize> {
        self.map.find(dest).filter(|&i| self.map.expires[i] > self.age)
    }

    /// Number of live routes. O(1) while the earliest-expiry bound proves
    /// every stored entry live (always right after a sweep); otherwise one
    /// walk of the contiguous expiry lane.
    pub fn len(&self) -> usize {
        match self.min_expires {
            Some(min) if min <= self.age => {
                let age = self.age;
                self.map
                    .keys
                    .iter()
                    .zip(self.map.expires.iter())
                    .filter(|&(&k, &e)| k != PeerId::EMPTY && e > age)
                    .count()
            }
            _ => self.map.len,
        }
    }

    /// `true` if no live routes are known.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The next RVP towards `dest` (`Some(dest)` itself when direct), or
    /// `None` when no live route exists (Figure 6 `next_RVP()`).
    pub fn next_rvp(&self, dest: PeerId) -> Option<PeerId> {
        self.find_live(dest).map(|i| self.map.meta[i].rvp)
    }

    /// `true` if a live direct route (open NAT hole) to `dest` exists.
    pub fn is_direct(&self, dest: PeerId) -> bool {
        self.find_live(dest).is_some_and(|i| self.map.meta[i].rvp == dest)
    }

    /// Remaining TTL of the route towards `dest`.
    pub fn ttl_of(&self, dest: PeerId) -> Option<SimDuration> {
        self.find_live(dest).map(|i| self.map.expires[i].saturating_sub(self.age))
    }

    /// The full route entry towards `dest`.
    pub fn entry_of(&self, dest: PeerId) -> Option<RouteEntry> {
        self.find_live(dest).map(|i| RouteEntry {
            rvp: self.map.meta[i].rvp,
            ttl: self.map.expires[i].saturating_sub(self.age),
            hops: self.map.meta[i].hops,
        })
    }

    /// Installs or refreshes the *direct* route for `dest` (Figure 6
    /// `update_next_RVP(p, p, HOLE_TIMEOUT)`, run on every receive): the
    /// hole is provably open, so the route always wins and its TTL is never
    /// shortened.
    pub fn update_direct(&mut self, dest: PeerId, ttl: SimDuration) {
        self.touch_direct_inner(dest, ttl, None);
    }

    /// [`RoutingTable::update_direct`] plus the observed endpoint the
    /// datagram came from — the engines' per-receive `touch`, folded into
    /// one probe.
    pub fn touch_direct(&mut self, dest: PeerId, ttl: SimDuration, observed: Endpoint) {
        self.touch_direct_inner(dest, ttl, Some(observed));
    }

    fn touch_direct_inner(&mut self, dest: PeerId, ttl: SimDuration, observed: Option<Endpoint>) {
        if dest == self.owner || ttl.is_zero() {
            return;
        }
        let expires = self.age + ttl;
        self.map.reserve(1);
        match self.map.probe(dest) {
            Slot::Occupied(i) => {
                // A stale (expired, not yet swept) entry is absent for all
                // observable purposes: overwrite it wholesale. A live one
                // keeps the larger expiry and the freshest endpoint —
                // unless the observed endpoint *moved*: a mid-session NAT
                // rebind re-ported the peer, so the accumulated expiry is
                // trust in a hole that no longer exists and the entry is
                // reset to the fresh observation (the silent-blackhole
                // fix: never serve a dead contact on borrowed time).
                let stale = self.map.expires[i] <= self.age;
                let remapped = !stale
                    && matches!((observed, self.map.meta[i].contact),
                        (Some(o), Some(c)) if o != c);
                let m = &mut self.map.meta[i];
                m.rvp = dest;
                m.hops = 1;
                m.contact = if stale || remapped { observed } else { observed.or(m.contact) };
                let cur = self.map.expires[i];
                self.map.expires[i] = if stale || remapped { expires } else { cur.max(expires) };
                if remapped {
                    // The reset may have *shortened* this entry's expiry
                    // below the tracked earliest-expiry bound.
                    self.note_expiry(expires);
                }
            }
            Slot::Vacant(i) => {
                self.map.commit(i, dest, expires, Meta { rvp: dest, hops: 1, contact: observed });
                self.note_expiry(expires);
            }
        }
    }

    /// The last observed endpoint of `dest`, available exactly while a
    /// live *direct* route exists (replies through the hole it names).
    pub fn contact_of(&self, dest: PeerId) -> Option<Endpoint> {
        self.find_live(dest)
            .filter(|&i| self.map.meta[i].rvp == dest)
            .and_then(|i| self.map.meta[i].contact)
    }

    /// Updates (or creates) the entry for `dest` (Figure 6
    /// `update_next_RVP()`). `hops` is the estimated chain length through
    /// `rvp`.
    ///
    /// Precedence rules keeping the table sound *and loop-free*:
    ///
    /// * a direct route (`rvp == dest`, `hops == 1`) always overwrites;
    /// * a chain route never downgrades a live direct route;
    /// * among chain routes, the shorter estimated chain wins; on equal
    ///   length the longer TTL wins; the same provider refreshes in place.
    ///
    /// Updates with zero TTL or more than [`MAX_ROUTE_HOPS`] hops are
    /// ignored.
    pub fn update_next_rvp(&mut self, dest: PeerId, rvp: PeerId, ttl: SimDuration, hops: u8) {
        if dest == self.owner || ttl.is_zero() || hops > MAX_ROUTE_HOPS {
            return;
        }
        if rvp == dest {
            self.update_direct(dest, ttl);
            return;
        }
        self.map.reserve(1);
        self.update_chain_prereserved(dest, rvp, ttl, hops);
    }

    /// Chain-route update with the occupancy check already paid (shared by
    /// the point API above and the batch install below). `rvp != dest`,
    /// `ttl > 0` and `hops <= MAX_ROUTE_HOPS` hold on entry.
    #[inline]
    fn update_chain_prereserved(&mut self, dest: PeerId, rvp: PeerId, ttl: SimDuration, hops: u8) {
        let new_expires = self.age + ttl;
        let new_hops = hops.max(2);
        match self.map.probe(dest) {
            Slot::Vacant(i) => {
                self.map.commit(i, dest, new_expires, Meta { rvp, hops: new_hops, contact: None });
                self.note_expiry(new_expires);
            }
            Slot::Occupied(i) => {
                let cur = self.map.meta[i];
                let cur_expires = self.map.expires[i];
                if cur_expires <= self.age {
                    // Stale: observably absent, so the update wins outright.
                    self.map.expires[i] = new_expires;
                    self.map.meta[i] = Meta { rvp, hops: new_hops, contact: None };
                    self.note_expiry(new_expires);
                } else if cur.rvp == dest {
                    // Keep the direct route.
                } else if cur.rvp == rvp {
                    // Same provider: take the fresher estimate.
                    self.map.expires[i] = cur_expires.max(new_expires);
                    self.map.meta[i].hops = new_hops;
                } else if new_hops < cur.hops || (new_hops == cur.hops && new_expires > cur_expires)
                {
                    self.map.expires[i] = new_expires;
                    self.map.meta[i] = Meta { rvp, hops: new_hops, contact: None };
                    // The replacement may expire earlier than what it
                    // displaced.
                    self.note_expiry(new_expires);
                }
            }
        }
    }

    /// Installs chain routes for descriptors received in a shuffle with
    /// `partner` (Figure 6 `update_routing_table()`): the partner becomes
    /// the RVP for every natted peer it handed us.
    ///
    /// Each received TTL is capped by the TTL of our own route to the
    /// partner — the chain cannot outlive its first hop (Figure 5's
    /// minimum-along-the-chain invariant) — and each received hop estimate
    /// grows by the partner's own distance.
    ///
    /// This is a true batch operation: the partner entry is read once, and
    /// the whole run of descriptors is covered by a single occupancy/growth
    /// check sized from the iterator's upper bound.
    pub fn install_from_shuffle(
        &mut self,
        partner: PeerId,
        received: impl IntoIterator<Item = (PeerId, SimDuration, u8)>,
    ) -> u64 {
        let Some(pi) = self.find_live(partner) else { return 0 };
        let partner_ttl = self.map.expires[pi].saturating_sub(self.age);
        let partner_hops = self.map.meta[pi].hops;
        let it = received.into_iter();
        let batched = match it.size_hint().1 {
            Some(upper) => {
                self.map.reserve(upper);
                true
            }
            None => false,
        };
        let mut installed = 0;
        for (dest, ttl, hops) in it {
            if dest == self.owner || dest == partner {
                continue;
            }
            let ttl = ttl.min(partner_ttl);
            let hops = hops.saturating_add(partner_hops);
            if ttl.is_zero() || hops > MAX_ROUTE_HOPS {
                // Counted as handled (matching the point API, which
                // ignores zero-TTL/overlong updates after the attempt).
                installed += 1;
                continue;
            }
            if !batched {
                self.map.reserve(1);
            }
            self.update_chain_prereserved(dest, partner, ttl, hops);
            installed += 1;
        }
        installed
    }

    /// Decreases every TTL by `elapsed` (Figure 6
    /// `decrease_routing_table_ttls()`, line 14).
    ///
    /// O(1) bookkeeping: advances the age accumulator. Expiry itself is
    /// enforced by the read-path filters; every `SWEEP_EVERY` of
    /// accumulated age an amortized sweep of the expiry lane purges the
    /// lapsed entries in one pass (backward-shift compaction — no rehash,
    /// no reallocation). When the earliest-expiry bound proves nothing has
    /// lapsed, the scheduled sweep is skipped without touching the lanes.
    ///
    /// Returns the number of entries the sweep purged (0 between sweeps —
    /// the same cadence the retained hash-map implementation reported).
    pub fn decrease_ttls(&mut self, elapsed: SimDuration) -> u64 {
        self.age += elapsed;
        if self.age < self.next_sweep {
            return 0;
        }
        self.next_sweep = self.age + SWEEP_EVERY;
        match self.min_expires {
            Some(min) if min <= self.age => {
                let (purged, new_min) = self.map.sweep_expired(self.age);
                self.min_expires = new_min;
                purged
            }
            _ => 0,
        }
    }

    /// Removes the entry for `dest`, returning it if it was still live
    /// (a stale entry is dropped from storage but reported as absent).
    pub fn remove(&mut self, dest: PeerId) -> Option<RouteEntry> {
        self.map.find(dest).and_then(|i| {
            let live = self.map.expires[i] > self.age;
            let e = RouteEntry {
                rvp: self.map.meta[i].rvp,
                ttl: self.map.expires[i].saturating_sub(self.age),
                hops: self.map.meta[i].hops,
            };
            self.map.remove_at(i);
            live.then_some(e)
        })
    }

    /// Resolves the chain towards `dest` down to a *directly reachable*
    /// first hop: follows `next_RVP` links within this table until hitting
    /// a direct route.
    ///
    /// Returns `None` if the chain is broken (a hop without a live route)
    /// or longer than `max_depth` (cycle guard). For a direct `dest`
    /// returns `dest` itself.
    pub fn resolve_first_hop(&self, dest: PeerId, max_depth: usize) -> Option<PeerId> {
        let mut hop = dest;
        for _ in 0..max_depth {
            let rvp = self.find_live(hop).map(|i| self.map.meta[i].rvp)?;
            if rvp == hop {
                return Some(hop);
            }
            hop = rvp;
        }
        None
    }

    /// Iterates over live `(dest, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (PeerId, RouteEntry)> + '_ {
        self.map
            .keys
            .iter()
            .enumerate()
            .filter(|&(i, &k)| k != PeerId::EMPTY && self.map.expires[i] > self.age)
            .map(|(i, k)| {
                (
                    *k,
                    RouteEntry {
                        rvp: self.map.meta[i].rvp,
                        ttl: self.map.expires[i].saturating_sub(self.age),
                        hops: self.map.meta[i].hops,
                    },
                )
            })
    }

    /// Snapshot-time instrumentation: records the probe distance of every
    /// resident entry into `hist` (a read-only walk — the hot path carries
    /// no histogram state; stale entries still occupy slots and lengthen
    /// probes, so they are recorded too) and returns
    /// `(live entries, slot capacity)` for occupancy gauges.
    pub fn probe_stats(&self, hist: &mut nylon_obs::Histogram) -> (u64, u64) {
        let mut live = 0u64;
        for (i, &k) in self.map.keys.iter().enumerate() {
            if k == PeerId::EMPTY {
                continue;
            }
            if self.map.expires[i] > self.age {
                live += 1;
            }
            let home = RouteMap::slot_of(k, self.map.mask);
            hist.record((i.wrapping_sub(home) & self.map.mask) as u64);
        }
        (live, self.map.keys.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const S90: SimDuration = SimDuration::from_secs(90);
    const S60: SimDuration = SimDuration::from_secs(60);
    const S30: SimDuration = SimDuration::from_secs(30);

    fn rt() -> RoutingTable {
        RoutingTable::new(PeerId(0))
    }

    #[test]
    fn empty_table_has_no_routes() {
        let t = rt();
        assert!(t.is_empty());
        assert_eq!(t.next_rvp(PeerId(1)), None);
        assert!(!t.is_direct(PeerId(1)));
        assert_eq!(t.ttl_of(PeerId(1)), None);
        assert_eq!(t.entry_of(PeerId(1)), None);
    }

    #[test]
    fn direct_route_roundtrip() {
        let mut t = rt();
        t.update_direct(PeerId(1), S90);
        assert_eq!(t.next_rvp(PeerId(1)), Some(PeerId(1)));
        assert!(t.is_direct(PeerId(1)));
        assert_eq!(t.ttl_of(PeerId(1)), Some(S90));
        assert_eq!(t.entry_of(PeerId(1)).unwrap().hops, 1);
    }

    #[test]
    fn never_routes_to_self() {
        let mut t = rt();
        t.update_direct(PeerId(0), S90);
        t.update_next_rvp(PeerId(0), PeerId(1), S90, 2);
        assert!(t.is_empty());
    }

    #[test]
    fn zero_ttl_updates_ignored() {
        let mut t = rt();
        t.update_direct(PeerId(1), SimDuration::ZERO);
        t.update_next_rvp(PeerId(2), PeerId(1), SimDuration::ZERO, 2);
        assert!(t.is_empty());
    }

    #[test]
    fn overlong_routes_ignored() {
        let mut t = rt();
        t.update_next_rvp(PeerId(2), PeerId(1), S90, MAX_ROUTE_HOPS + 1);
        assert!(t.is_empty());
        t.update_next_rvp(PeerId(2), PeerId(1), S90, MAX_ROUTE_HOPS);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn chain_route_does_not_downgrade_direct() {
        let mut t = rt();
        t.update_direct(PeerId(9), S60);
        t.update_next_rvp(PeerId(9), PeerId(1), S90, 2);
        assert!(t.is_direct(PeerId(9)), "chain must not replace live direct route");
        assert_eq!(t.ttl_of(PeerId(9)), Some(S60));
    }

    #[test]
    fn direct_overwrites_chain() {
        let mut t = rt();
        t.update_next_rvp(PeerId(9), PeerId(1), S90, 2);
        t.update_direct(PeerId(9), S30);
        assert!(t.is_direct(PeerId(9)));
        // Direct refresh keeps the larger TTL.
        assert_eq!(t.ttl_of(PeerId(9)), Some(S90));
    }

    #[test]
    fn direct_refresh_never_shortens() {
        let mut t = rt();
        t.update_direct(PeerId(1), S90);
        t.update_direct(PeerId(1), S30);
        assert_eq!(t.ttl_of(PeerId(1)), Some(S90));
        t.update_direct(PeerId(1), S90 + S30);
        assert_eq!(t.ttl_of(PeerId(1)), Some(S90 + S30));
    }

    #[test]
    fn shorter_chain_wins() {
        let mut t = rt();
        t.update_next_rvp(PeerId(9), PeerId(1), S90, 4);
        t.update_next_rvp(PeerId(9), PeerId(2), S30, 2);
        assert_eq!(t.next_rvp(PeerId(9)), Some(PeerId(2)), "shorter chain must win");
        t.update_next_rvp(PeerId(9), PeerId(3), S90, 3);
        assert_eq!(t.next_rvp(PeerId(9)), Some(PeerId(2)), "longer chain must not win");
    }

    #[test]
    fn equal_length_longer_ttl_wins() {
        let mut t = rt();
        t.update_next_rvp(PeerId(9), PeerId(1), S30, 2);
        t.update_next_rvp(PeerId(9), PeerId(2), S60, 2);
        assert_eq!(t.next_rvp(PeerId(9)), Some(PeerId(2)));
        t.update_next_rvp(PeerId(9), PeerId(3), S30, 2);
        assert_eq!(t.next_rvp(PeerId(9)), Some(PeerId(2)));
    }

    #[test]
    fn same_provider_refreshes_in_place() {
        let mut t = rt();
        t.update_next_rvp(PeerId(9), PeerId(1), S30, 2);
        t.update_next_rvp(PeerId(9), PeerId(1), S60, 3);
        let e = t.entry_of(PeerId(9)).unwrap();
        assert_eq!(e.ttl, S60);
        assert_eq!(e.hops, 3, "same provider updates the estimate");
    }

    #[test]
    fn chain_hops_floor_is_two() {
        let mut t = rt();
        t.update_next_rvp(PeerId(9), PeerId(1), S30, 0);
        assert_eq!(t.entry_of(PeerId(9)).unwrap().hops, 2);
    }

    #[test]
    fn install_from_shuffle_caps_ttl_and_grows_hops() {
        let mut t = rt();
        t.update_direct(PeerId(1), S60); // hole to partner: 60 s, 1 hop
        t.install_from_shuffle(PeerId(1), [(PeerId(9), S90, 1), (PeerId(8), S30, 3)]);
        assert_eq!(t.next_rvp(PeerId(9)), Some(PeerId(1)));
        assert_eq!(t.ttl_of(PeerId(9)), Some(S60), "chain TTL capped by first hop");
        assert_eq!(t.entry_of(PeerId(9)).unwrap().hops, 2, "1 (partner) + 1 (received)");
        assert_eq!(t.ttl_of(PeerId(8)), Some(S30), "smaller received TTL kept");
        assert_eq!(t.entry_of(PeerId(8)).unwrap().hops, 4);
    }

    #[test]
    fn install_from_shuffle_without_partner_route_is_noop() {
        let mut t = rt();
        t.install_from_shuffle(PeerId(1), [(PeerId(9), S90, 1)]);
        assert!(t.is_empty());
    }

    #[test]
    fn install_skips_self_and_partner() {
        let mut t = rt();
        t.update_direct(PeerId(1), S90);
        t.install_from_shuffle(PeerId(1), [(PeerId(0), S90, 1), (PeerId(1), S30, 1)]);
        assert_eq!(t.len(), 1, "only the direct partner route remains");
        assert!(t.is_direct(PeerId(1)));
        assert_eq!(t.ttl_of(PeerId(1)), Some(S90), "partner entry untouched");
    }

    #[test]
    fn touch_direct_invalidates_on_endpoint_mismatch() {
        // A NAT rebind re-ports the peer mid-session: the next datagram
        // arrives from a new endpoint while the stale entry still holds
        // accumulated TTL. Keeping the max expiry would keep serving
        // trust in a hole that no longer exists (silent blackhole).
        let e1 = Endpoint::new(nylon_net::Ip(1), nylon_net::Port(1000));
        let e2 = Endpoint::new(nylon_net::Ip(1), nylon_net::Port(2000));
        let mut t = rt();
        t.touch_direct(PeerId(1), S90, e1);
        t.decrease_ttls(S30);
        assert_eq!(t.contact_of(PeerId(1)), Some(e1));
        // Rebind: same peer, new observed endpoint, fresh 30 s hole.
        t.touch_direct(PeerId(1), S30, e2);
        assert_eq!(t.contact_of(PeerId(1)), Some(e2), "fresh endpoint replaces the dead one");
        assert_eq!(t.ttl_of(PeerId(1)), Some(S30), "expiry resets to the fresh hole");
        // Same-endpoint refreshes still never shorten.
        t.touch_direct(PeerId(1), S90, e2);
        t.touch_direct(PeerId(1), S30, e2);
        assert_eq!(t.ttl_of(PeerId(1)), Some(S90));
    }

    #[test]
    fn touch_after_mismatch_keeps_expiry_bound_sound() {
        // The remap path can *shorten* an entry's expiry; the
        // earliest-expiry bound must follow or len()'s O(1) fast path
        // would count a lapsed entry as live.
        let e1 = Endpoint::new(nylon_net::Ip(1), nylon_net::Port(1000));
        let e2 = Endpoint::new(nylon_net::Ip(1), nylon_net::Port(2000));
        let mut t = rt();
        t.touch_direct(PeerId(1), S90 + S90, e1);
        t.touch_direct(PeerId(1), S30, e2); // remap: expiry drops to 30 s
        t.decrease_ttls(S60);
        assert_eq!(t.len(), 0);
        assert_eq!(t.contact_of(PeerId(1)), None);
    }

    #[test]
    fn decrease_ttls_purges_expired() {
        let mut t = rt();
        t.update_direct(PeerId(1), S60);
        t.update_next_rvp(PeerId(2), PeerId(1), S30, 2);
        t.decrease_ttls(S30);
        assert_eq!(t.ttl_of(PeerId(1)), Some(S30));
        assert_eq!(t.ttl_of(PeerId(2)), None, "expired entry must be purged");
        t.decrease_ttls(S30);
        assert!(t.is_empty());
    }

    #[test]
    fn len_is_exact_after_expiry() {
        // len must agree with the live set at every age, whether it takes
        // the O(1) counter fast path or the expiry-lane walk.
        let mut t = rt();
        for i in 1..=10u32 {
            t.update_direct(PeerId(i), SimDuration::from_secs(10 * i as u64));
        }
        assert_eq!(t.len(), 10);
        for step in 1..=10usize {
            t.decrease_ttls(SimDuration::from_secs(10));
            assert_eq!(t.len(), 10 - step);
            assert_eq!(t.iter().count(), t.len());
        }
        assert!(t.is_empty());
    }

    #[test]
    fn resolve_first_hop_follows_chain() {
        let mut t = rt();
        t.update_direct(PeerId(1), S90);
        t.update_next_rvp(PeerId(2), PeerId(1), S60, 2);
        t.update_next_rvp(PeerId(3), PeerId(2), S30, 3);
        assert_eq!(t.resolve_first_hop(PeerId(1), 8), Some(PeerId(1)));
        assert_eq!(t.resolve_first_hop(PeerId(2), 8), Some(PeerId(1)));
        assert_eq!(t.resolve_first_hop(PeerId(3), 8), Some(PeerId(1)));
    }

    #[test]
    fn resolve_first_hop_detects_breaks_and_cycles() {
        let mut t = rt();
        t.update_next_rvp(PeerId(3), PeerId(2), S30, 2);
        assert_eq!(t.resolve_first_hop(PeerId(3), 8), None, "broken chain");
        // Cycle: 4 -> 5 -> 4.
        t.update_next_rvp(PeerId(4), PeerId(5), S30, 2);
        t.update_next_rvp(PeerId(5), PeerId(4), S30, 2);
        assert_eq!(t.resolve_first_hop(PeerId(4), 8), None, "cycle must hit depth guard");
    }

    #[test]
    fn remove_and_iter() {
        let mut t = rt();
        t.update_direct(PeerId(1), S90);
        t.update_next_rvp(PeerId(2), PeerId(1), S60, 2);
        let collected: Vec<(PeerId, RouteEntry)> = t.iter().collect();
        assert_eq!(collected.len(), 2);
        let removed = t.remove(PeerId(1)).unwrap();
        assert_eq!(removed.rvp, PeerId(1));
        assert_eq!(t.len(), 1);
        assert!(t.remove(PeerId(1)).is_none());
    }

    proptest! {
        /// Chain TTLs never exceed the first-hop TTL at install time, hop
        /// estimates always exceed the partner's, and decrease_ttls keeps
        /// every remaining TTL positive.
        #[test]
        fn prop_ttl_invariants(
            partner_ttl_s in 1u64..200,
            recv in proptest::collection::vec((2u32..40, 1u64..200, 0u8..8), 0..30),
            dec_s in 1u64..100,
        ) {
            let mut t = RoutingTable::new(PeerId(0));
            let partner = PeerId(1);
            let pttl = SimDuration::from_secs(partner_ttl_s);
            t.update_direct(partner, pttl);
            t.install_from_shuffle(
                partner,
                recv.iter().map(|(id, s, h)| (PeerId(*id), SimDuration::from_secs(*s), *h)),
            );
            for (dest, e) in t.iter() {
                if dest != partner {
                    prop_assert!(e.ttl <= pttl, "chain TTL exceeds first hop");
                    prop_assert!(e.hops >= 2, "chain hop estimate below 2");
                }
            }
            t.decrease_ttls(SimDuration::from_secs(dec_s));
            for (_, e) in t.iter() {
                prop_assert!(!e.ttl.is_zero());
            }
        }

        /// resolve_first_hop never loops forever and, when it returns a
        /// hop, that hop is direct.
        #[test]
        fn prop_resolve_terminates(
            links in proptest::collection::vec((1u32..20, 1u32..20), 0..40),
        ) {
            let mut t = RoutingTable::new(PeerId(0));
            for (dest, rvp) in &links {
                t.update_next_rvp(PeerId(*dest), PeerId(*rvp), SimDuration::from_secs(30), 2);
            }
            for d in 1u32..20 {
                if let Some(hop) = t.resolve_first_hop(PeerId(d), 32) {
                    prop_assert!(t.is_direct(hop), "resolved hop must be direct");
                }
            }
        }
    }
}

/// The retained pre-RouteMap implementation (`FxHashMap` + lazy expiry +
/// periodic sweep), kept verbatim as the reference model for the
/// differential proptest below: `RouteMap`'s eager sweep must be
/// observably identical to lazy expiry at every step.
#[cfg(test)]
mod reference {
    use super::{RouteEntry, MAX_ROUTE_HOPS};
    use nylon_net::{Endpoint, PeerId};
    use nylon_sim::{FxHashMap, SimDuration};

    const SWEEP_EVERY: SimDuration = SimDuration::from_secs(90);

    #[derive(Debug, Clone, Copy)]
    struct Stored {
        rvp: PeerId,
        expires: SimDuration,
        hops: u8,
        contact: Option<Endpoint>,
    }

    impl Stored {
        fn ttl_at(&self, age: SimDuration) -> SimDuration {
            self.expires.saturating_sub(age)
        }
    }

    #[derive(Debug, Clone)]
    pub struct RefTable {
        owner: PeerId,
        entries: FxHashMap<PeerId, Stored>,
        age: SimDuration,
        next_sweep: SimDuration,
    }

    impl RefTable {
        pub fn new(owner: PeerId) -> Self {
            RefTable {
                owner,
                entries: FxHashMap::default(),
                age: SimDuration::ZERO,
                next_sweep: SWEEP_EVERY,
            }
        }

        fn live(&self, dest: PeerId) -> Option<&Stored> {
            self.entries.get(&dest).filter(|e| !e.ttl_at(self.age).is_zero())
        }

        pub fn len(&self) -> usize {
            self.entries.values().filter(|e| !e.ttl_at(self.age).is_zero()).count()
        }

        pub fn next_rvp(&self, dest: PeerId) -> Option<PeerId> {
            self.live(dest).map(|e| e.rvp)
        }

        pub fn ttl_of(&self, dest: PeerId) -> Option<SimDuration> {
            self.live(dest).map(|e| e.ttl_at(self.age))
        }

        pub fn entry_of(&self, dest: PeerId) -> Option<RouteEntry> {
            self.live(dest).map(|e| RouteEntry {
                rvp: e.rvp,
                ttl: e.ttl_at(self.age),
                hops: e.hops,
            })
        }

        pub fn contact_of(&self, dest: PeerId) -> Option<Endpoint> {
            self.live(dest).filter(|e| e.rvp == dest).and_then(|e| e.contact)
        }

        pub fn is_direct(&self, dest: PeerId) -> bool {
            self.live(dest).is_some_and(|e| e.rvp == dest)
        }

        pub fn update_direct(&mut self, dest: PeerId, ttl: SimDuration) {
            self.touch_inner(dest, ttl, None);
        }

        pub fn touch_direct(&mut self, dest: PeerId, ttl: SimDuration, observed: Endpoint) {
            self.touch_inner(dest, ttl, Some(observed));
        }

        fn touch_inner(&mut self, dest: PeerId, ttl: SimDuration, observed: Option<Endpoint>) {
            if dest == self.owner || ttl.is_zero() {
                return;
            }
            let expires = self.age + ttl;
            match self.entries.get_mut(&dest) {
                Some(e) => {
                    let stale = e.ttl_at(self.age).is_zero();
                    let remapped =
                        !stale && matches!((observed, e.contact), (Some(o), Some(c)) if o != c);
                    e.rvp = dest;
                    e.hops = 1;
                    e.expires = if stale || remapped { expires } else { e.expires.max(expires) };
                    e.contact = if stale || remapped { observed } else { observed.or(e.contact) };
                }
                None => {
                    self.entries
                        .insert(dest, Stored { rvp: dest, expires, hops: 1, contact: observed });
                }
            }
        }

        pub fn update_next_rvp(&mut self, dest: PeerId, rvp: PeerId, ttl: SimDuration, hops: u8) {
            if dest == self.owner || ttl.is_zero() || hops > MAX_ROUTE_HOPS {
                return;
            }
            if rvp == dest {
                self.update_direct(dest, ttl);
                return;
            }
            let age = self.age;
            let new = Stored { rvp, expires: age + ttl, hops: hops.max(2), contact: None };
            match self.entries.get_mut(&dest) {
                None => {
                    self.entries.insert(dest, new);
                }
                Some(existing) if existing.ttl_at(age).is_zero() => {
                    *existing = new;
                }
                Some(existing) => {
                    if existing.rvp == dest {
                        // Keep the direct route.
                    } else if existing.rvp == rvp {
                        existing.expires = existing.expires.max(new.expires);
                        existing.hops = new.hops;
                    } else if new.hops < existing.hops
                        || (new.hops == existing.hops && new.ttl_at(age) > existing.ttl_at(age))
                    {
                        *existing = new;
                    }
                }
            }
        }

        pub fn install_from_shuffle(
            &mut self,
            partner: PeerId,
            received: impl IntoIterator<Item = (PeerId, SimDuration, u8)>,
        ) -> u64 {
            let Some(partner_entry) = self.live(partner).copied() else { return 0 };
            let partner_ttl = partner_entry.ttl_at(self.age);
            let mut installed = 0;
            for (dest, ttl, hops) in received {
                if dest == self.owner || dest == partner {
                    continue;
                }
                self.update_next_rvp(
                    dest,
                    partner,
                    ttl.min(partner_ttl),
                    hops.saturating_add(partner_entry.hops),
                );
                installed += 1;
            }
            installed
        }

        pub fn decrease_ttls(&mut self, elapsed: SimDuration) -> u64 {
            self.age += elapsed;
            if self.age >= self.next_sweep {
                let age = self.age;
                let before = self.entries.len();
                self.entries.retain(|_, e| !e.ttl_at(age).is_zero());
                self.next_sweep = age + SWEEP_EVERY;
                return (before - self.entries.len()) as u64;
            }
            0
        }

        pub fn remove(&mut self, dest: PeerId) -> Option<RouteEntry> {
            let age = self.age;
            self.entries.remove(&dest).filter(|e| !e.ttl_at(age).is_zero()).map(|e| RouteEntry {
                rvp: e.rvp,
                ttl: e.ttl_at(age),
                hops: e.hops,
            })
        }
    }
}

#[cfg(test)]
mod differential {
    use super::reference::RefTable;
    use super::*;
    use proptest::prelude::*;

    fn xorshift(s: &mut u64) -> u64 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }

    proptest! {
        /// `RouteMap` (open-addressed, lane-filtered expiry) and the
        /// retained `FxHashMap` reference must agree on every observable —
        /// `entry_of`, `next_rvp`, `contact_of`, `ttl_of`, `is_direct`,
        /// `len`, and the sweeps' purge counts — after every step of a
        /// random interleaving of install/touch/decrease_ttls/remove ops.
        ///
        /// Ops are decoded from plain tuples `(kind, a, b, ttl, hops)`:
        /// 0 update_direct, 1 touch_direct, 2 update_next_rvp,
        /// 3 install_from_shuffle (batch derived deterministically from
        /// the tuple), 4 decrease_ttls, 5 remove.
        #[test]
        fn prop_routemap_matches_reference(
            ops in proptest::collection::vec(
                ((0u8..6, 0u32..24), (0u32..24, 0u64..200, 0u8..20)),
                0..150,
            ),
        ) {
            let owner = PeerId(0);
            let mut new = RoutingTable::new(owner);
            let mut old = RefTable::new(owner);
            let ep = |i: u32| Endpoint::new(nylon_net::Ip(0x0100_0000 + i), nylon_net::Port(9000));
            for &((kind, a), (b, t, h)) in &ops {
                let ttl = SimDuration::from_secs(t);
                match kind {
                    0 => {
                        new.update_direct(PeerId(a), ttl);
                        old.update_direct(PeerId(a), ttl);
                    }
                    1 => {
                        new.touch_direct(PeerId(a), ttl, ep(b % 8));
                        old.touch_direct(PeerId(a), ttl, ep(b % 8));
                    }
                    2 => {
                        new.update_next_rvp(PeerId(a), PeerId(b), ttl, h);
                        old.update_next_rvp(PeerId(a), PeerId(b), ttl, h);
                    }
                    3 => {
                        // Shuffle batch: length and contents derived from
                        // the op tuple (the vendored proptest has no
                        // nested per-op collections).
                        let mut s = ((a as u64) << 32)
                            ^ (b as u64)
                            ^ t.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            ^ ((h as u64) << 17)
                            ^ 0xdead_beef;
                        let n = (xorshift(&mut s) % 14) as usize;
                        let batch: Vec<(PeerId, SimDuration, u8)> = (0..n)
                            .map(|_| {
                                (
                                    PeerId((xorshift(&mut s) % 24) as u32),
                                    SimDuration::from_secs(xorshift(&mut s) % 200),
                                    (xorshift(&mut s) % 20) as u8,
                                )
                            })
                            .collect();
                        let x = new.install_from_shuffle(PeerId(a), batch.clone());
                        let y = old.install_from_shuffle(PeerId(a), batch);
                        prop_assert_eq!(x, y, "installed counts diverge");
                    }
                    4 => {
                        // Same sweep cadence (the min-expires bound only
                        // skips provably empty sweeps), so even the purge
                        // counts must agree.
                        let x = new.decrease_ttls(SimDuration::from_secs(t % 60 + 1));
                        let y = old.decrease_ttls(SimDuration::from_secs(t % 60 + 1));
                        prop_assert_eq!(x, y, "purge counts diverge");
                    }
                    _ => {
                        prop_assert_eq!(new.remove(PeerId(a)), old.remove(PeerId(a)));
                    }
                }
                prop_assert_eq!(new.len(), old.len(), "len diverges");
                for d in 0u32..24 {
                    let d = PeerId(d);
                    prop_assert_eq!(new.entry_of(d), old.entry_of(d), "entry_of diverges");
                    prop_assert_eq!(new.next_rvp(d), old.next_rvp(d));
                    prop_assert_eq!(new.contact_of(d), old.contact_of(d));
                    prop_assert_eq!(new.ttl_of(d), old.ttl_of(d));
                    prop_assert_eq!(new.is_direct(d), old.is_direct(d));
                }
            }
        }
    }
}
