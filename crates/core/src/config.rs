//! Nylon protocol configuration.

use nylon_gossip::{GossipConfig, MergePolicy, PropagationPolicy, SelectionPolicy};
use nylon_sim::SimDuration;

use crate::message::WireSizeModel;

/// Configuration of the Nylon protocol.
///
/// Defaults follow the paper's evaluation: (push/pull, rand, healer), view
/// size 15, shuffle period 5 s, hole timeout 90 s.
#[derive(Debug, Clone)]
pub struct NylonConfig {
    /// Maximum number of view entries (paper: 15 or 27).
    pub view_size: usize,
    /// Interval between shuffles initiated by one peer (paper: 5 s).
    pub shuffle_period: SimDuration,
    /// Value used for `HOLE_TIMEOUT` when installing direct routes
    /// (Figure 6); must match the NAT boxes' rule lifetime (paper: 90 s).
    pub hole_timeout: SimDuration,
    /// How long an initiated hole punch waits for the PONG before the
    /// shuffle round is abandoned.
    pub punch_timeout: SimDuration,
    /// View merging policy (the paper's Nylon uses healer).
    pub merge: MergePolicy,
    /// Gossip target selection (the paper's Nylon uses rand).
    pub selection: SelectionPolicy,
    /// Wire-size model for bandwidth accounting.
    pub wire: WireSizeModel,
    /// Maximum chain-resolution depth when looking up a directly reachable
    /// first hop (cycle guard; chains in the paper average < 4).
    pub max_chain_depth: usize,
    /// Messages that have been forwarded this many times are dropped
    /// (anti-loop backstop; honest chains are far shorter).
    pub max_forward_hops: u8,
}

impl Default for NylonConfig {
    fn default() -> Self {
        NylonConfig {
            view_size: 15,
            shuffle_period: SimDuration::from_secs(5),
            hole_timeout: SimDuration::from_secs(90),
            punch_timeout: SimDuration::from_secs(2),
            merge: MergePolicy::Healer,
            selection: SelectionPolicy::Rand,
            wire: WireSizeModel::default(),
            max_chain_depth: 32,
            max_forward_hops: 12,
        }
    }
}

impl NylonConfig {
    /// The equivalent generic-protocol configuration (used for the
    /// reference baseline in Figure 7 and for shared view plumbing).
    pub fn gossip_config(&self) -> GossipConfig {
        GossipConfig {
            view_size: self.view_size,
            shuffle_period: self.shuffle_period,
            selection: self.selection,
            propagation: PropagationPolicy::PushPull,
            merge: self.merge,
            entry_bytes: self.wire.entry_bytes,
            msg_header_bytes: self.wire.header_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = NylonConfig::default();
        assert_eq!(c.view_size, 15);
        assert_eq!(c.shuffle_period, SimDuration::from_secs(5));
        assert_eq!(c.hole_timeout, SimDuration::from_secs(90));
        assert_eq!(c.merge, MergePolicy::Healer);
        assert_eq!(c.selection, SelectionPolicy::Rand);
    }

    #[test]
    fn gossip_config_mirrors_settings() {
        let c = NylonConfig { view_size: 27, ..NylonConfig::default() };
        let g = c.gossip_config();
        assert_eq!(g.view_size, 27);
        assert_eq!(g.label(), "push/pull,rand,healer");
    }
}
