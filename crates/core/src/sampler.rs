//! [`PeerSampler`] implementations for the engines in this crate.
//!
//! [`NylonEngine`] and the [`StaticRvpEngine`] strawman plug into the same
//! generic experiment harness as the baseline: see
//! [`nylon_gossip::sampler`] for the trait contract. The only
//! protocol-specific answer each engine gives is
//! [`PeerSampler::edge_usable`] — for Nylon, a natted reference is usable
//! when a live *route* towards it exists (direct hole or RVP chain),
//! because reachability through relays is the protocol's whole point, so
//! the oracle asks the routing table, not the raw NAT state.

use nylon_gossip::{
    GossipConfig, NodeDescriptor, PartialView, PeerSampler, SamplerConfig, ShardSampler,
};
use nylon_net::{NatClass, NetConfig, PeerId, TrafficStats};
use nylon_sim::{ShardPlan, SimDuration, SimTime};

use crate::config::NylonConfig;
use crate::engine::NylonEngine;
use crate::static_rvp::StaticRvpEngine;

impl SamplerConfig for NylonConfig {
    type Sampler = NylonEngine;

    fn set_view_size(&mut self, view_size: usize) {
        self.view_size = view_size;
    }

    /// Nylon's `HOLE_TIMEOUT` must match the NAT boxes' rule lifetime or
    /// the TTL bookkeeping would be meaningless; building against a custom
    /// fabric adopts its lifetime.
    fn align_to_net(&mut self, net_cfg: &NetConfig) {
        self.hole_timeout = net_cfg.hole_timeout;
    }
}

impl PeerSampler for NylonEngine {
    type Config = NylonConfig;

    fn with_seed(cfg: NylonConfig, net_cfg: NetConfig, seed: u64) -> Self {
        NylonEngine::new(cfg, net_cfg, seed)
    }

    fn add_peer(&mut self, class: NatClass) -> PeerId {
        NylonEngine::add_peer(self, class)
    }

    fn enable_port_forwarding(&mut self, peer: PeerId) {
        NylonEngine::enable_port_forwarding(self, peer);
    }

    fn install_fault_plan(&mut self, plan: nylon_faults::FaultPlan) {
        NylonEngine::install_fault_plan(self, plan);
    }

    fn fault_stats(&self) -> nylon_faults::FaultStats {
        NylonEngine::fault_stats(self)
    }

    fn bootstrap_random_public(&mut self, per_view: usize) {
        NylonEngine::bootstrap_random_public(self, per_view);
    }

    fn start(&mut self) {
        NylonEngine::start(self);
    }

    fn run_for(&mut self, dur: SimDuration) {
        NylonEngine::run_for(self, dur);
    }

    fn run_rounds(&mut self, n: u64) {
        NylonEngine::run_rounds(self, n);
    }

    fn kill_peers(&mut self, peers: &[PeerId]) {
        NylonEngine::kill_peers(self, peers);
    }

    fn now(&self) -> SimTime {
        NylonEngine::now(self)
    }

    fn shuffle_period(&self) -> SimDuration {
        self.config().shuffle_period
    }

    fn peer_count(&self) -> usize {
        self.net().peer_count()
    }

    fn is_alive(&self, peer: PeerId) -> bool {
        self.net().is_alive(peer)
    }

    fn class_of(&self, peer: PeerId) -> NatClass {
        self.net().class_of(peer)
    }

    fn traffic_of(&self, peer: PeerId) -> TrafficStats {
        self.net().stats_of(peer)
    }

    fn alive_peers(&self) -> Vec<PeerId> {
        self.net().alive_peers().collect()
    }

    fn view_of(&self, peer: PeerId) -> &PartialView {
        NylonEngine::view_of(self, peer)
    }

    fn view_of_mut(&mut self, peer: PeerId) -> &mut PartialView {
        NylonEngine::view_of_mut(self, peer)
    }

    fn descriptor_of(&self, peer: PeerId) -> NodeDescriptor {
        NylonEngine::descriptor_of(self, peer)
    }

    /// An entry is usable when the target is alive and either public or
    /// reachable through a live route (direct hole or RVP chain).
    fn edge_usable(&self, holder: PeerId, d: &NodeDescriptor) -> bool {
        d.id.index() < self.net().peer_count()
            && self.net().is_alive(d.id)
            && (d.class.is_public() || self.routing_of(holder).next_rvp(d.id).is_some())
    }

    fn obs_report(&self, out: &mut nylon_obs::Report) {
        NylonEngine::obs_report(self, out);
    }
}

/// Configuration newtype binding [`GossipConfig`] parameters to the
/// [`StaticRvpEngine`] (the plain `GossipConfig` already builds the
/// baseline, and a config type can build only one engine).
#[derive(Debug, Clone, Default)]
pub struct StaticRvpConfig(pub GossipConfig);

impl SamplerConfig for StaticRvpConfig {
    type Sampler = StaticRvpEngine;

    fn set_view_size(&mut self, view_size: usize) {
        self.0.view_size = view_size;
    }
}

impl PeerSampler for StaticRvpEngine {
    type Config = StaticRvpConfig;

    fn with_seed(cfg: StaticRvpConfig, net_cfg: NetConfig, seed: u64) -> Self {
        StaticRvpEngine::new(cfg.0, net_cfg, seed)
    }

    fn add_peer(&mut self, class: NatClass) -> PeerId {
        StaticRvpEngine::add_peer(self, class)
    }

    fn enable_port_forwarding(&mut self, peer: PeerId) {
        StaticRvpEngine::enable_port_forwarding(self, peer);
    }

    fn install_fault_plan(&mut self, plan: nylon_faults::FaultPlan) {
        StaticRvpEngine::install_fault_plan(self, plan);
    }

    fn fault_stats(&self) -> nylon_faults::FaultStats {
        StaticRvpEngine::fault_stats(self)
    }

    fn bootstrap_random_public(&mut self, per_view: usize) {
        StaticRvpEngine::bootstrap_random_public(self, per_view);
    }

    fn start(&mut self) {
        StaticRvpEngine::start(self);
    }

    fn run_for(&mut self, dur: SimDuration) {
        StaticRvpEngine::run_for(self, dur);
    }

    fn run_rounds(&mut self, n: u64) {
        StaticRvpEngine::run_rounds(self, n);
    }

    fn kill_peers(&mut self, peers: &[PeerId]) {
        StaticRvpEngine::kill_peers(self, peers);
    }

    fn now(&self) -> SimTime {
        StaticRvpEngine::now(self)
    }

    fn shuffle_period(&self) -> SimDuration {
        self.config().shuffle_period
    }

    fn peer_count(&self) -> usize {
        self.net().peer_count()
    }

    fn is_alive(&self, peer: PeerId) -> bool {
        self.net().is_alive(peer)
    }

    fn class_of(&self, peer: PeerId) -> NatClass {
        self.net().class_of(peer)
    }

    fn traffic_of(&self, peer: PeerId) -> TrafficStats {
        self.net().stats_of(peer)
    }

    fn alive_peers(&self) -> Vec<PeerId> {
        self.net().alive_peers().collect()
    }

    fn view_of(&self, peer: PeerId) -> &PartialView {
        StaticRvpEngine::view_of(self, peer)
    }

    fn view_of_mut(&mut self, peer: PeerId) -> &mut PartialView {
        StaticRvpEngine::view_of_mut(self, peer)
    }

    fn descriptor_of(&self, peer: PeerId) -> NodeDescriptor {
        StaticRvpEngine::descriptor_of(self, peer)
    }

    fn edge_usable(&self, holder: PeerId, d: &NodeDescriptor) -> bool {
        StaticRvpEngine::edge_usable(self, holder, d)
    }

    fn obs_report(&self, out: &mut nylon_obs::Report) {
        StaticRvpEngine::obs_report(self, out);
    }
}

// Both engines' usability oracles read only holder-local protocol state
// (Nylon's routing table, the strawman's RVP bindings) plus globally
// replicated facts (liveness, classes), so the default holder-shard
// delegation of `edge_usable_sharded` is exact and neither impl overrides
// it. Contrast with the baseline, whose packet-level oracle spans both
// ends' NAT state.
impl ShardSampler for NylonEngine {
    fn set_shard(&mut self, plan: ShardPlan, idx: usize) {
        NylonEngine::set_shard(self, plan, idx);
    }

    fn net_config(&self) -> &NetConfig {
        self.net().config()
    }
}

impl ShardSampler for StaticRvpEngine {
    fn set_shard(&mut self, plan: ShardPlan, idx: usize) {
        StaticRvpEngine::set_shard(self, plan, idx);
    }

    fn net_config(&self) -> &NetConfig {
        self.net().config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NylonStats;
    use crate::static_rvp::StaticRvpStats;
    use nylon_gossip::{Sharded, ShardedConfig};
    use nylon_net::NatType;

    fn drive<C: SamplerConfig>(cfg: C, seed: u64) -> C::Sampler {
        let mut eng = C::Sampler::with_seed(cfg, NetConfig::default(), seed);
        for _ in 0..15 {
            eng.add_peer(NatClass::Public);
        }
        for _ in 0..25 {
            eng.add_peer(NatClass::Natted(NatType::PortRestrictedCone));
        }
        eng.bootstrap_random_public(8);
        eng.start();
        eng.run_rounds(25);
        eng
    }

    #[test]
    fn nylon_implements_the_lifecycle() {
        let eng = drive(NylonConfig::default(), 5);
        assert_eq!(PeerSampler::peer_count(&eng), 40);
        assert!(eng.stats().punch_successes > 0, "holes must get punched");
        let p = PeerSampler::alive_peers(&eng)[0];
        assert!(!PeerSampler::view_of(&eng, p).is_empty());
    }

    #[test]
    fn nylon_natted_edges_need_routes() {
        let eng = drive(NylonConfig::default(), 9);
        // Every usable natted edge must have a resolvable RVP.
        for p in PeerSampler::alive_peers(&eng) {
            for d in eng.view_of(p).iter() {
                if d.class.is_natted() && PeerSampler::edge_usable(&eng, p, d) {
                    assert!(eng.routing_of(p).next_rvp(d.id).is_some());
                }
            }
        }
    }

    #[test]
    fn align_to_net_adopts_hole_timeout() {
        let net_cfg =
            NetConfig { hole_timeout: SimDuration::from_secs(30), ..NetConfig::default() };
        let mut cfg = NylonConfig::default();
        cfg.align_to_net(&net_cfg);
        assert_eq!(cfg.hole_timeout, SimDuration::from_secs(30));
        // And the engine's construction-time invariant holds.
        let _ = NylonEngine::with_seed(cfg, net_cfg, 1);
    }

    #[test]
    fn static_rvp_implements_the_lifecycle() {
        let eng = drive(StaticRvpConfig::default(), 13);
        assert_eq!(PeerSampler::peer_count(&eng), 40);
        assert!(eng.stats().relays > 0, "natted shuffles must be relayed");
        // Natted entries with a known, alive RVP binding are usable.
        let usable: usize = PeerSampler::alive_peers(&eng)
            .iter()
            .map(|p| {
                eng.view_of(*p).iter().filter(|d| PeerSampler::edge_usable(&eng, *p, d)).count()
            })
            .sum();
        assert!(usable > 0, "static-RVP overlay has no usable edges");
    }

    /// (merged-counter debug string, per-node sorted view ids) — a full
    /// fingerprint of the observable protocol state.
    fn shard_fingerprint<E: ShardSampler>(
        eng: &Sharded<E>,
        stats: String,
    ) -> (String, Vec<Vec<u32>>) {
        let views = (0..eng.peer_count() as u32)
            .map(|i| {
                let mut ids: Vec<u32> = eng.view_of(PeerId(i)).iter().map(|d| d.id.0).collect();
                ids.sort_unstable();
                ids
            })
            .collect();
        (stats, views)
    }

    fn run_sharded<C: SamplerConfig>(
        cfg: C,
        shards: usize,
        publics: u32,
        natted: u32,
        seed: u64,
    ) -> Sharded<C::Sampler>
    where
        C::Sampler: ShardSampler,
    {
        let mut eng = Sharded::<C::Sampler>::with_seed(
            ShardedConfig::new(cfg, shards),
            NetConfig::default(),
            seed,
        );
        for _ in 0..publics {
            eng.add_peer(NatClass::Public);
        }
        for _ in 0..natted {
            eng.add_peer(NatClass::Natted(NatType::PortRestrictedCone));
        }
        eng.bootstrap_random_public(8);
        eng.start();
        eng.run_rounds(12);
        eng
    }

    #[test]
    fn sharded_nylon_is_shard_count_independent() {
        let fp = |shards| {
            let eng = run_sharded(NylonConfig::default(), shards, 15, 25, 21);
            let stats: NylonStats =
                eng.shards().iter().fold(NylonStats::default(), |mut acc, e| {
                    acc.merge(&e.stats());
                    acc
                });
            assert!(stats.punch_successes > 0, "holes must get punched");
            shard_fingerprint(&eng, format!("{stats:?}"))
        };
        let reference = fp(1);
        assert_eq!(fp(2), reference, "Nylon diverged at 2 shards");
        assert_eq!(fp(4), reference, "Nylon diverged at 4 shards");
    }

    #[test]
    fn sharded_nylon_fallback_bootstrap_is_shard_count_independent() {
        // 100 % NAT population: bootstrap pre-opens holes, which mutate
        // both endpoints' boxes — the one piece of global state every
        // shard must replay identically (non-owned draws come from probe
        // forks of the node streams).
        let fp = |shards| {
            let eng = run_sharded(NylonConfig::default(), shards, 0, 30, 33);
            let stats: NylonStats =
                eng.shards().iter().fold(NylonStats::default(), |mut acc, e| {
                    acc.merge(&e.stats());
                    acc
                });
            assert!(stats.shuffles_initiated > 0);
            shard_fingerprint(&eng, format!("{stats:?}"))
        };
        let reference = fp(1);
        assert_eq!(fp(3), reference, "fallback bootstrap diverged at 3 shards");
    }

    #[test]
    fn sharded_static_rvp_is_shard_count_independent() {
        let fp = |shards| {
            let eng = run_sharded(StaticRvpConfig::default(), shards, 10, 30, 5);
            let stats: StaticRvpStats =
                eng.shards().iter().fold(StaticRvpStats::default(), |mut acc, e| {
                    acc.merge(&e.stats());
                    acc
                });
            assert!(stats.relays > 0, "natted shuffles must be relayed");
            shard_fingerprint(&eng, format!("{stats:?}"))
        };
        let reference = fp(1);
        assert_eq!(fp(2), reference, "static-RVP diverged at 2 shards");
        assert_eq!(fp(4), reference, "static-RVP diverged at 4 shards");
    }
}
