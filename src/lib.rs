//! Umbrella package for the Nylon reproduction.
//!
//! The real code lives in the workspace crates:
//!
//! * [`nylon`] — the NAT-resilient peer-sampling protocol (the paper's
//!   contribution).
//! * [`nylon_gossip`] — the generic peer-sampling framework (baselines).
//! * [`nylon_net`] — the NAT-aware simulated network.
//! * [`nylon_sim`] — the discrete-event kernel.
//! * [`nylon_metrics`] — connectivity/staleness/randomness analysis.
//! * [`nylon_workloads`] — the experiment harness and the `repro` binary.
//!
//! This package only hosts the runnable `examples/` and the cross-crate
//! integration tests in `tests/`.

pub use nylon;
pub use nylon_gossip;
pub use nylon_metrics;
pub use nylon_net;
pub use nylon_sim;
pub use nylon_workloads;
